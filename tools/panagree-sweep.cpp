// panagree-sweep: rank candidate interconnection-agreement deployments by
// operator utility over an incremental what-if sweep (the §VIII outlook
// turned into a tool).
//
//   panagree-sweep [scenarios] [top-k] [seed]
//
// Defaults: 200 candidate deployments, top 10 shown, seed 4242. Every
// candidate is a single new peering link between two ASes that share a
// neighbor today (the "we already meet somewhere" pairs that dominate real
// peering candidacies). Each scenario is evaluated as a Delta over one
// shared CSR snapshot through scenario::SweepRunner - per-source §VI
// length-3 path sets are cached across scenarios and only sources inside
// a candidate's invalidation ball are recomputed - then aggregated into
// path-diversity / geodistance / transit-fee deltas and a scalar utility.
//
// Environment (see bench_common.hpp): PANAGREE_ASES, PANAGREE_SOURCES,
// PANAGREE_THREADS, and PANAGREE_CAIDA to sweep a real CAIDA as-rel2
// topology instead of the synthetic one.
#include <algorithm>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "panagree/diversity/report.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/scenario/metrics.hpp"
#include "panagree/scenario/sweep.hpp"
#include "panagree/util/table.hpp"

using namespace panagree;
using topology::AsId;

int main(int argc, char** argv) {
  std::size_t num_scenarios = 200;
  std::size_t top_k = 10;
  std::uint64_t seed = 4242;
  try {
    if (argc > 1) {
      num_scenarios = std::stoul(argv[1]);
    }
    if (argc > 2) {
      top_k = std::stoul(argv[2]);
    }
    if (argc > 3) {
      seed = std::stoull(argv[3]);
    }
  } catch (const std::exception&) {
    std::cerr << "usage: panagree-sweep [scenarios] [top-k] [seed]\n";
    return 2;
  }

  try {
    const auto topo = benchcfg::make_internet();
    const topology::CompiledTopology compiled(topo.graph);
    const econ::Economy economy = econ::make_default_economy(topo.graph);
    // A CAIDA graph is embedded with synthetic geodata, so the world is
    // always usable here.
    const scenario::MetricsAggregator aggregator(compiled, &topo.world,
                                                 &economy);

    const std::vector<AsId> sources = diversity::sample_sources(
        topo.graph, benchcfg::num_sources(), benchcfg::kSampleSeed);
    scenario::SweepConfig config;
    config.threads = benchcfg::num_threads();
    config.dirty_radius = scenario::kLength3DirtyRadius;
    scenario::SweepRunner<scenario::SourcePathSet> runner(compiled, sources,
                                                          config);
    const auto enumerate = [](const scenario::Overlay& overlay, AsId src) {
      return scenario::enumerate_length3(overlay, src);
    };
    runner.prime(enumerate);
    const scenario::Overlay base_view(compiled);
    const scenario::ScenarioMetrics baseline =
        aggregator.aggregate(base_view, sources, runner.baseline());
    std::cerr << "[sweep] baseline over " << sources.size()
              << " sources: " << baseline.grc_paths << " GRC + "
              << baseline.ma_paths << " MA paths, "
              << baseline.grc_pairs + baseline.ma_extra_pairs
              << " reachable pairs, fees "
              << util::format_double(baseline.transit_fees, 1) << "\n";

    const auto deltas =
        scenario::candidate_peering_deltas(compiled, num_scenarios, seed);
    if (deltas.size() < num_scenarios) {
      std::cerr << "[sweep] only " << deltas.size()
                << " distinct candidates available\n";
    }

    struct Ranked {
      std::size_t scenario = 0;
      scenario::MetricsDelta delta;
      double utility = 0.0;
      scenario::SweepStats stats;
    };
    std::vector<Ranked> ranked;
    ranked.reserve(deltas.size());
    std::size_t recomputed_total = 0;
    for (std::size_t i = 0; i < deltas.size(); ++i) {
      scenario::Overlay overlay(compiled);
      overlay.apply(deltas[i]);
      Ranked entry;
      entry.scenario = i;
      // Zero-copy: cache-served sources are aggregated straight out of
      // the runner's baseline cache, dirty ones out of its scratch.
      const std::vector<const scenario::SourcePathSet*> results =
          runner.evaluate_refs(deltas[i], enumerate, &entry.stats);
      const scenario::ScenarioMetrics metrics =
          aggregator.aggregate(overlay, sources, results);
      entry.delta = scenario::subtract(metrics, baseline);
      entry.utility = scenario::operator_utility(entry.delta);
      recomputed_total += entry.stats.recomputed_sources;
      ranked.push_back(entry);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked& a, const Ranked& b) {
                if (a.utility != b.utility) {
                  return a.utility > b.utility;
                }
                return a.scenario < b.scenario;
              });

    const std::size_t source_scenarios = deltas.size() * sources.size();
    std::cout << "== panagree-sweep: " << deltas.size()
              << " candidate peering deployments over "
              << topo.graph.num_ases() << " ASes ==\n"
              << "per-source recomputes: " << recomputed_total << " of "
              << source_scenarios << " source-scenarios";
    if (source_scenarios > 0) {
      std::cout << " (cache hit "
                << util::format_double(
                       100.0 * (1.0 - static_cast<double>(recomputed_total) /
                                          static_cast<double>(
                                              source_scenarios)),
                       1)
                << "%)";
    }
    std::cout << "\n\n";
    util::Table table({"rank", "deployment", "utility", "new paths",
                       "new pairs", "fee delta", "mean km delta"});
    for (std::size_t i = 0; i < std::min(top_k, ranked.size()); ++i) {
      const Ranked& r = ranked[i];
      const scenario::LinkChange& link = deltas[r.scenario].add.front();
      table.add_row({std::to_string(i + 1),
                     "peer AS" + std::to_string(link.a) + " - AS" +
                         std::to_string(link.b),
                     util::format_double(r.utility, 2),
                     util::format_double(r.delta.paths, 0),
                     util::format_double(r.delta.pairs, 0),
                     util::format_double(r.delta.transit_fees, 2),
                     util::format_double(r.delta.mean_best_geodistance_km, 2)});
    }
    table.print(std::cout);
    std::cout << "\nutility = fees saved + "
              << scenario::UtilityWeights{}.per_new_pair
              << " * new reachable pairs - "
              << scenario::UtilityWeights{}.per_km_regression
              << " * mean-geodistance regression (km), per unit demand.\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
