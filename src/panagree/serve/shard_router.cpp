#include "panagree/serve/shard_router.hpp"

#include <future>
#include <string>
#include <utility>

#include "panagree/obs/build_info.hpp"
#include "panagree/obs/metrics.hpp"

namespace panagree::serve {

namespace {

// The router shares the engine's memo metric names: either front end's
// epoch batch lands in the same counters, so dashboards need no sharding
// awareness to read cache effectiveness.
struct RouterMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& memo_hits = reg.counter("engine.whatif_memo_hits");
  obs::Counter& memo_shared = reg.counter("engine.whatif_memo_shared");
  obs::Counter& memo_unshared = reg.counter("engine.whatif_unshared");
  obs::Histogram& batch = reg.histogram("engine.whatif_batch");
};

[[nodiscard]] RouterMetrics& router_metrics() {
  static RouterMetrics metrics;
  return metrics;
}

}  // namespace

/// Per-shard observability: serve.shards carries the shard count (the
/// label panagree-top keys on), serve.shard.<i>.requests counts requests
/// that did work on shard i (fan-out kinds count on every shard), and
/// serve.shard.<i>.epoch republishes each shard's epoch so a stats
/// consumer can assert fleet coherence from outside.
struct ShardRouter::ShardObs {
  std::vector<obs::Counter*> requests;
  std::vector<obs::Gauge*> epochs;

  explicit ShardObs(std::size_t num_shards) {
    obs::Registry& reg = obs::Registry::global();
    reg.gauge("serve.shards").set(static_cast<std::int64_t>(num_shards));
    requests.reserve(num_shards);
    epochs.reserve(num_shards);
    for (std::size_t shard = 0; shard < num_shards; ++shard) {
      const std::string prefix =
          "serve.shard." + std::to_string(shard) + ".";
      requests.push_back(&reg.counter(prefix + "requests"));
      epochs.push_back(&reg.gauge(prefix + "epoch"));
    }
  }
};

ShardRouter::ShardRouter(std::vector<QueryEngine*> shards,
                         RouterConfig config)
    : shards_(std::move(shards)), config_(config) {
  util::require(!shards_.empty(), "ShardRouter: no shards");
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    for (const AsId src : shards_[shard]->sources()) {
      sources_.push_back(src);
      util::require(source_shard_.emplace(src, shard).second,
                    "ShardRouter: source sampled by two shards");
    }
  }
  obs_ = std::make_unique<ShardObs>(shards_.size());
}

ShardRouter::~ShardRouter() = default;

std::uint64_t ShardRouter::epoch() const {
  const std::shared_lock<std::shared_mutex> barrier(barrier_mutex_);
  return epoch_;
}

void ShardRouter::refresh_baseline() {
  const std::unique_lock<std::shared_mutex> barrier(barrier_mutex_);
  // The global baseline fold, in canonical source order (shard ranges are
  // contiguous): the exact += sequence a single engine runs in
  // refresh_contributions, so subtract() references identical bytes.
  scenario::SourceContribution total;
  for (QueryEngine* shard : shards_) {
    const QueryEngine::ContributionView view = shard->contributions();
    for (const scenario::SourceContribution& contribution : view.contribs) {
      total += contribution;
    }
  }
  baseline_metrics_ = scenario::finalize(total);
  primed_ = true;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    obs_->epochs[shard]->set(
        static_cast<std::int64_t>(shards_[shard]->epoch()));
  }
}

std::size_t ShardRouter::shard_of(AsId src) const {
  const auto it = source_shard_.find(src);
  return it != source_shard_.end() ? it->second : 0;
}

void ShardRouter::paths(AsId src, const QueryEngine::PathsSink& sink) const {
  const std::shared_lock<std::shared_mutex> barrier(barrier_mutex_);
  const std::size_t shard = shard_of(src);
  obs_->requests[shard]->increment();
  shards_[shard]->paths(src, sink);
}

DiversityResult ShardRouter::diversity(AsId src) const {
  const std::shared_lock<std::shared_mutex> barrier(barrier_mutex_);
  const std::size_t shard = shard_of(src);
  obs_->requests[shard]->increment();
  return shards_[shard]->diversity(src);
}

WhatIfResult ShardRouter::compute_whatif(
    const scenario::Delta& delta) const {
  // Fan the per-shard slice evaluations out concurrently (shard 0 runs on
  // the calling thread); the fold below is strictly in shard order, so
  // concurrency never reaches the floating-point sums.
  std::vector<QueryEngine::WhatIfSlice> slices(shards_.size());
  std::vector<std::future<QueryEngine::WhatIfSlice>> pending;
  pending.reserve(shards_.size() - 1);
  for (std::size_t shard = 1; shard < shards_.size(); ++shard) {
    pending.push_back(
        std::async(std::launch::async, [this, shard, &delta] {
          return shards_[shard]->whatif_slice(delta);
        }));
  }
  slices[0] = shards_[0]->whatif_slice(delta);
  for (std::size_t shard = 1; shard < shards_.size(); ++shard) {
    slices[shard] = pending[shard - 1].get();
  }

  // Splice the dirty slices into the baseline contributions in canonical
  // source order across all shards - one global fold, identical to the
  // single-engine splice.
  scenario::SourceContribution total;
  scenario::SweepStats stats;
  // Every shard grows the same invalidation ball over the same composed
  // state; the per-source accounting is disjoint and sums.
  stats.ball_size = slices[0].stats.ball_size;
  for (const QueryEngine::WhatIfSlice& slice : slices) {
    stats.recomputed_sources += slice.stats.recomputed_sources;
    stats.cached_sources += slice.stats.cached_sources;
    std::size_t next = 0;
    for (std::size_t i = 0; i < slice.baseline.size(); ++i) {
      if (next < slice.dirty_positions.size() &&
          slice.dirty_positions[next] == i) {
        total += slice.fresh[next];
        ++next;
      } else {
        total += slice.baseline[i];
      }
    }
  }
  const scenario::ScenarioMetrics metrics = scenario::finalize(total);
  const scenario::MetricsDelta marginal =
      scenario::subtract(metrics, baseline_metrics_);

  WhatIfResult result;
  result.paths_delta = marginal.paths;
  result.pairs_delta = marginal.pairs;
  result.mean_km_delta = marginal.mean_best_geodistance_km;
  result.fees_delta = marginal.transit_fees;
  result.utility = scenario::operator_utility(marginal, config_.weights);
  result.recomputed_sources = stats.recomputed_sources;
  result.cached_sources = stats.cached_sources;
  result.ball_size = stats.ball_size;
  return result;
}

WhatIfResult ShardRouter::whatif(const scenario::Delta& delta) const {
  const std::shared_lock<std::shared_mutex> barrier(barrier_mutex_);
  util::require(primed_, "ShardRouter: refresh_baseline() first");
  for (obs::Counter* requests : obs_->requests) {
    requests->increment();
  }
  if (config_.max_batch == 0) {
    router_metrics().memo_unshared.increment();
    return compute_whatif(delta);
  }

  // Same epoch-batch memo as QueryEngine::whatif, one level up: entries
  // are keyed by canonical delta and valid only within the epoch the
  // barrier lock pins.
  const std::string key = canonical_delta_key(delta);
  std::shared_future<WhatIfResult> shared;
  std::promise<WhatIfResult> promise;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(memo_mutex_);
    const auto it = memo_.find(key);
    if (it != memo_.end() && it->second.epoch == epoch_) {
      shared = it->second.future;
    } else if (it != memo_.end() || memo_.size() < config_.max_batch) {
      shared = promise.get_future().share();
      memo_[key] = MemoEntry{epoch_, shared};
      owner = true;
    }
    // else: batch full - compute unshared below.
  }
  if (!owner && shared.valid()) {
    router_metrics().memo_hits.increment();
    return shared.get();
  }
  if (!owner) {
    router_metrics().memo_unshared.increment();
    return compute_whatif(delta);
  }
  router_metrics().memo_shared.increment();
  try {
    WhatIfResult result = compute_whatif(delta);
    promise.set_value(result);
    return result;
  } catch (...) {
    promise.set_exception(std::current_exception());
    throw;
  }
}

std::uint64_t ShardRouter::rebase(const scenario::Delta& step) {
  const std::unique_lock<std::shared_mutex> barrier(barrier_mutex_);
  util::require(primed_, "ShardRouter: refresh_baseline() first");
  for (obs::Counter* requests : obs_->requests) {
    requests->increment();
  }
  // The barrier is held exclusively across every per-shard rebase, the
  // baseline re-fold, and the epoch bump: no reader can run between a
  // rebased shard and a not-yet-rebased one. An invalid step throws out
  // of the first shard before any state changed (engine rebase is
  // copy-then-swap), leaving the fleet coherent on the old epoch.
  for (QueryEngine* shard : shards_) {
    shard->rebase(step);
  }
  scenario::SourceContribution total;
  for (QueryEngine* shard : shards_) {
    const QueryEngine::ContributionView view = shard->contributions();
    for (const scenario::SourceContribution& contribution : view.contribs) {
      total += contribution;
    }
  }
  baseline_metrics_ = scenario::finalize(total);
  ++epoch_;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    obs_->epochs[shard]->set(
        static_cast<std::int64_t>(shards_[shard]->epoch()));
  }
  {
    const std::lock_guard<std::mutex> lock(memo_mutex_);
    router_metrics().batch.record(memo_.size());
    memo_.clear();
  }
  return epoch_;
}

void ShardRouter::flush_whatif_memo() const {
  const std::lock_guard<std::mutex> lock(memo_mutex_);
  memo_.clear();
}

void ShardRouter::handle_line(std::string_view line, std::string& out,
                              RequestStages* stages) {
  RequestStages local;
  RequestStages& st = stages != nullptr ? *stages : local;
  st.start_ns = stage_now_ns();
  std::uint64_t id = 0;
  bool parsed = false;
  try {
    const Request request = parse_request(line, &id);
    const std::uint64_t parsed_ns = stage_now_ns();
    st.parse_ns = parsed_ns - st.start_ns;
    st.wire_id = request.id;
    st.slow_kind = static_cast<std::uint64_t>(request.kind);
    parsed = true;
    // Count the request before handling it, exactly like
    // QueryEngine::handle_line (the stats response includes itself).
    detail::RequestMetricsRef& metrics = detail::request_metrics(request.kind);
    metrics.count.increment();
    switch (request.kind) {
      case RequestKind::kPaths: {
        st.source = request.source;
        st.work = source_shard_.contains(request.source)
                      ? EngineWork::kCache
                      : EngineWork::kSweep;
        // Serialization happens inside the sink (see the engine's
        // handle_line): measured directly, subtracted from the engine
        // interval.
        std::uint64_t serialize_ns = 0;
        paths(request.source,
              [&](std::span<const diversity::Length3Path> grc,
                  std::span<const diversity::Length3Path> ma) {
                const std::uint64_t serialize_start = stage_now_ns();
                append_paths_response(out, request.id, request.source, grc,
                                      ma);
                serialize_ns = stage_now_ns() - serialize_start;
              });
        const std::uint64_t done_ns = stage_now_ns();
        st.serialize_ns = serialize_ns;
        st.engine_ns = done_ns - parsed_ns - serialize_ns;
        metrics.latency_ns.record(done_ns - st.start_ns);
        break;
      }
      case RequestKind::kDiversity: {
        st.source = request.source;
        st.work = source_shard_.contains(request.source)
                      ? EngineWork::kCache
                      : EngineWork::kSweep;
        const DiversityResult result = diversity(request.source);
        const std::uint64_t engine_done_ns = stage_now_ns();
        st.engine_ns = engine_done_ns - parsed_ns;
        append_diversity_response(out, request.id, request.source, result);
        const std::uint64_t done_ns = stage_now_ns();
        st.serialize_ns = done_ns - engine_done_ns;
        metrics.latency_ns.record(done_ns - st.start_ns);
        break;
      }
      case RequestKind::kWhatIf: {
        st.delta_links =
            request.delta.add.size() + request.delta.remove.size();
        st.work = EngineWork::kSweep;
        const WhatIfResult result = whatif(request.delta);
        const std::uint64_t engine_done_ns = stage_now_ns();
        st.engine_ns = engine_done_ns - parsed_ns;
        append_whatif_response(out, request.id, result);
        const std::uint64_t done_ns = stage_now_ns();
        st.serialize_ns = done_ns - engine_done_ns;
        metrics.latency_ns.record(done_ns - st.start_ns);
        break;
      }
      case RequestKind::kRebase: {
        st.delta_links =
            request.delta.add.size() + request.delta.remove.size();
        st.work = EngineWork::kSweep;
        const std::uint64_t new_epoch = rebase(request.delta);
        const std::uint64_t engine_done_ns = stage_now_ns();
        st.engine_ns = engine_done_ns - parsed_ns;
        append_rebase_response(out, request.id, new_epoch);
        const std::uint64_t done_ns = stage_now_ns();
        st.serialize_ns = done_ns - engine_done_ns;
        metrics.latency_ns.record(done_ns - st.start_ns);
        break;
      }
      case RequestKind::kStats: {
        metrics.latency_ns.record(stage_now_ns() - st.start_ns);
        obs::refresh_process_gauges();
        const std::uint64_t current_epoch = epoch();
        const obs::MetricsSnapshot snap = obs::snapshot_metrics();
        const std::uint64_t engine_done_ns = stage_now_ns();
        st.engine_ns = engine_done_ns - parsed_ns;
        append_stats_response(out, request.id,
                              obs::build_info().git_describe,
                              current_epoch, snap);
        st.serialize_ns = stage_now_ns() - engine_done_ns;
        break;
      }
      case RequestKind::kSlowLog: {
        metrics.latency_ns.record(stage_now_ns() - st.start_ns);
        obs::SlowQueryLog& log = obs::SlowQueryLog::global();
        const std::vector<obs::SlowQueryRecord> entries = log.snapshot();
        const std::uint64_t engine_done_ns = stage_now_ns();
        st.engine_ns = engine_done_ns - parsed_ns;
        append_slowlog_response(out, request.id, log.threshold_ns(),
                                entries);
        st.serialize_ns = stage_now_ns() - engine_done_ns;
        break;
      }
    }
  } catch (const std::exception& e) {
    const std::uint64_t caught_ns = stage_now_ns();
    if (!parsed) {
      st.parse_ns = caught_ns - st.start_ns;
    } else {
      st.engine_ns = caught_ns - st.start_ns - st.parse_ns;
      st.serialize_ns = 0;
    }
    st.wire_id = id;
    st.slow_kind = kSlowKindError;
    st.work = EngineWork::kNone;
    detail::RequestMetricsRef& errors = detail::error_metrics();
    errors.count.increment();
    errors.latency_ns.record(caught_ns - st.start_ns);
    append_error_response(out, id, e.what());
    st.serialize_ns += stage_now_ns() - caught_ns;
  }
  if (stages == nullptr) {
    finish_request_observation(st);
  }
}

}  // namespace panagree::serve
