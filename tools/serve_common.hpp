// The one way panagree-serve and panagree-query (--direct / --bench)
// build a QueryEngine, factored out so the two sides cannot drift: the
// byte-identity contract of the serving layer ("server responses ==
// direct library calls") only holds if both construct the engine from
// the same topology, the same source sample (sample seed included), the
// same economy, and the same scoring weights.
#pragma once

#include <cstddef>
#include <vector>

#include "bench_common.hpp"
#include "panagree/diversity/report.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/serve/query_engine.hpp"

namespace panagree::servecfg {

/// Everything a serving process keeps resident, in construction order
/// (the engine borrows from every earlier member). Not movable: the
/// engine holds pointers into the bundle.
struct ServeContext {
  /// `snapshot_override` follows benchcfg::load_internet semantics (a
  /// --snapshot flag wins over PANAGREE_SNAPSHOT / PANAGREE_CAIDA /
  /// the synthetic generator); `sources_n` is the cached sample size,
  /// sampled with the benches' shared seed.
  ServeContext(const char* snapshot_override, std::size_t sources_n,
               std::size_t threads, std::size_t max_batch,
               bool pin_threads = false)
      : net(benchcfg::load_internet(0, snapshot_override)),
        economy(econ::make_default_economy(net.graph())),
        sources(diversity::sample_sources(net.graph(), sources_n,
                                          benchcfg::kSampleSeed)),
        engine(net.compiled(), &net.world(), &economy, sources,
               engine_config(threads, max_batch, pin_threads)) {}

  ServeContext(const ServeContext&) = delete;
  ServeContext& operator=(const ServeContext&) = delete;

  benchcfg::Internet net;
  econ::Economy economy;
  std::vector<topology::AsId> sources;
  serve::QueryEngine engine;

 private:
  static serve::EngineConfig engine_config(std::size_t threads,
                                           std::size_t max_batch,
                                           bool pin_threads) {
    serve::EngineConfig config;
    config.threads = threads;
    config.max_batch = max_batch;
    config.pin_threads = pin_threads;
    return config;
  }
};

}  // namespace panagree::servecfg
