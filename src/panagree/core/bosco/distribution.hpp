// Utility distributions for the BOSCO mechanism (§V-C1).
//
// The BOSCO service does not know the true agreement utilities u_X, u_Y; it
// estimates a distribution U_Z(u) per party (the paper envisions heuristics
// over transit/equipment prices). The mechanism mathematics need the pdf,
// cdf, interval masses and interval first moments (for exact expected-Nash-
// product integration), plus sampling (for random choice-set generation).
// Joint distributions are products of the two marginals, as in the paper's
// U(1) = Unif[-1,1]^2 and U(2) = Unif[-1/2,1]^2.
#pragma once

#include <memory>

#include "panagree/util/rng.hpp"

namespace panagree::bosco {

class UtilityDistribution {
 public:
  virtual ~UtilityDistribution() = default;

  [[nodiscard]] virtual double pdf(double u) const = 0;
  [[nodiscard]] virtual double cdf(double u) const = 0;

  /// P[lo <= u < hi] (continuous distributions: endpoints immaterial).
  [[nodiscard]] double mass_in(double lo, double hi) const;

  /// First moment over an interval: integral of u * pdf(u) du over [lo,hi].
  [[nodiscard]] virtual double first_moment_in(double lo,
                                               double hi) const = 0;

  [[nodiscard]] virtual double sample(util::Rng& rng) const = 0;

  [[nodiscard]] virtual double support_lo() const = 0;
  [[nodiscard]] virtual double support_hi() const = 0;

  [[nodiscard]] virtual std::unique_ptr<UtilityDistribution> clone() const = 0;
};

/// Uniform on [lo, hi].
class UniformDistribution final : public UtilityDistribution {
 public:
  UniformDistribution(double lo, double hi);

  [[nodiscard]] double pdf(double u) const override;
  [[nodiscard]] double cdf(double u) const override;
  [[nodiscard]] double first_moment_in(double lo, double hi) const override;
  [[nodiscard]] double sample(util::Rng& rng) const override;
  [[nodiscard]] double support_lo() const override { return lo_; }
  [[nodiscard]] double support_hi() const override { return hi_; }
  [[nodiscard]] std::unique_ptr<UtilityDistribution> clone() const override;

 private:
  double lo_;
  double hi_;
};

/// Triangular on [lo, hi] with the given mode.
class TriangularDistribution final : public UtilityDistribution {
 public:
  TriangularDistribution(double lo, double mode, double hi);

  [[nodiscard]] double pdf(double u) const override;
  [[nodiscard]] double cdf(double u) const override;
  [[nodiscard]] double first_moment_in(double lo, double hi) const override;
  [[nodiscard]] double sample(util::Rng& rng) const override;
  [[nodiscard]] double support_lo() const override { return lo_; }
  [[nodiscard]] double support_hi() const override { return hi_; }
  [[nodiscard]] std::unique_ptr<UtilityDistribution> clone() const override;

 private:
  double lo_;
  double mode_;
  double hi_;
};

/// Normal(mean, sigma) truncated to [lo, hi] and renormalized.
class TruncatedNormalDistribution final : public UtilityDistribution {
 public:
  TruncatedNormalDistribution(double mean, double sigma, double lo, double hi);

  [[nodiscard]] double pdf(double u) const override;
  [[nodiscard]] double cdf(double u) const override;
  [[nodiscard]] double first_moment_in(double lo, double hi) const override;
  [[nodiscard]] double sample(util::Rng& rng) const override;
  [[nodiscard]] double support_lo() const override { return lo_; }
  [[nodiscard]] double support_hi() const override { return hi_; }
  [[nodiscard]] std::unique_ptr<UtilityDistribution> clone() const override;

 private:
  [[nodiscard]] double phi(double u) const;      // standard normal pdf
  [[nodiscard]] double big_phi(double u) const;  // standard normal cdf

  double mean_;
  double sigma_;
  double lo_;
  double hi_;
  double z_;  ///< normalizing mass of the untruncated normal on [lo, hi]
};

}  // namespace panagree::bosco
