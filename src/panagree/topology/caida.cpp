#include "panagree/topology/caida.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

namespace panagree::topology::caida {

namespace {

std::uint64_t parse_asn(std::string_view field, std::size_t line_no) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    std::ostringstream os;
    os << "caida: invalid ASN '" << field << "' on line " << line_no;
    throw util::ParseError(os.str());
  }
  return value;
}

std::vector<std::string_view> split(std::string_view line, char sep) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t end = line.find(sep, start);
    if (end == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, end - start));
    start = end + 1;
  }
  return fields;
}

}  // namespace

std::uint64_t Dataset::asn_of(AsId id) const {
  for (const auto& [asn, as_id] : asn_to_id) {
    if (as_id == id) {
      return asn;
    }
  }
  throw util::PreconditionError("caida::Dataset::asn_of: unknown AsId");
}

Dataset parse(std::istream& in) {
  Dataset ds;
  const auto intern = [&](std::uint64_t asn) -> AsId {
    const auto it = ds.asn_to_id.find(asn);
    if (it != ds.asn_to_id.end()) {
      return it->second;
    }
    const AsId id = ds.graph.add_as(std::to_string(asn));
    ds.asn_to_id.emplace(asn, id);
    return id;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line.front() == '#') {
      continue;
    }
    const auto fields = split(line, '|');
    if (fields.size() < 3) {
      std::ostringstream os;
      os << "caida: expected at least 3 '|'-separated fields on line "
         << line_no;
      throw util::ParseError(os.str());
    }
    const std::uint64_t asn1 = parse_asn(fields[0], line_no);
    const std::uint64_t asn2 = parse_asn(fields[1], line_no);
    const std::string_view rel = fields[2];
    const AsId a = intern(asn1);
    const AsId b = intern(asn2);
    try {
      if (rel == "-1") {
        ds.graph.add_provider_customer(a, b);
      } else if (rel == "0") {
        ds.graph.add_peering(a, b);
      } else {
        std::ostringstream os;
        os << "caida: unknown relationship '" << rel << "' on line "
           << line_no;
        throw util::ParseError(os.str());
      }
    } catch (const util::PreconditionError& e) {
      std::ostringstream os;
      os << "caida: line " << line_no << ": " << e.what();
      throw util::ParseError(os.str());
    }
  }
  return ds;
}

Dataset parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw util::ParseError("caida: cannot open file: " + path);
  }
  return parse(in);
}

void write(const Graph& graph, std::ostream& out) {
  out << "# panagree as-rel2 export: <a>|<b>|<-1 provider / 0 peer>\n";
  for (const Link& link : graph.links()) {
    const auto name_or_id = [&](AsId as) -> std::string {
      const std::string& name = graph.info(as).name;
      const bool numeric =
          !name.empty() &&
          name.find_first_not_of("0123456789") == std::string::npos;
      return numeric ? name : std::to_string(as);
    };
    out << name_or_id(link.a) << '|' << name_or_id(link.b) << '|'
        << (link.type == LinkType::kProviderCustomer ? "-1" : "0") << '\n';
  }
}

}  // namespace panagree::topology::caida
