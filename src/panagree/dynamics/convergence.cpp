#include "panagree/dynamics/convergence.hpp"

namespace panagree::dynamics {

ChurnReport churn(const ConvergenceResult& before,
                  const ConvergenceResult& after) {
  util::require(before.routes.size() == after.routes.size(),
                "churn: tables cover different topologies");
  ChurnReport report;
  for (std::size_t u = 0; u < before.routes.size(); ++u) {
    const Route& a = before.routes[u];
    const Route& b = after.routes[u];
    if (a.reachable() && b.reachable()) {
      if (a.next_hop != b.next_hop) {
        ++report.changed_next_hops;
      }
    } else if (a.reachable()) {
      ++report.routes_lost;
    } else if (b.reachable()) {
      ++report.routes_gained;
    }
  }
  return report;
}

ChurnReport churn(const RoutingSnapshot& before,
                  const RoutingSnapshot& after) {
  util::require(before.dests == after.dests,
                "churn: snapshots cover different destination samples");
  ChurnReport report;
  for (std::size_t i = 0; i < before.results.size(); ++i) {
    report += churn(before.results[i], after.results[i]);
  }
  if constexpr (obs::enabled()) {
    detail::DynamicsMetrics& metrics = detail::dynamics_metrics();
    metrics.churn_next_hops.add(report.changed_next_hops);
    metrics.routes_lost.add(report.routes_lost);
    metrics.routes_gained.add(report.routes_gained);
  }
  return report;
}

}  // namespace panagree::dynamics
