#!/usr/bin/env bash
# Pinned bench invocation shared by CI's bench-regression job and by
# developers refreshing the committed baselines under bench/baselines/:
#
#   ./tools/bench_suite.sh [build-dir] [out-dir]
#
# Every BENCH_*.json the suite emits lands in out-dir;
# tools/check_bench_regression.py compares them against the baselines.
# Sizes are pinned small: the suite tracks the *relative* perf trajectory
# of the repo, not production scale (perf_micro carries its own fixed
# 3000-AS fixture).
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-bench-out}"
mkdir -p "$OUT"
export PANAGREE_BENCH_JSON_DIR="$OUT"
export PANAGREE_ASES=800
export PANAGREE_SOURCES=60
export PANAGREE_THREADS=2
export PANAGREE_SCENARIOS=24

# Compile the suite topology once; the plain-main benches then mmap the
# snapshot (PANAGREE_SNAPSHOT) instead of re-running the generator + embed
# per process. The snapshot freezes the same seed/size the generator would
# use, so results are unchanged - the benches' own BENCH json records the
# load time and peak RSS per run.
"$BUILD/panagree-compile" "$OUT/suite.pansnap"
export PANAGREE_SNAPSHOT="$OUT/suite.pansnap"

"$BUILD/bench_ext_networkwide_adoption"
"$BUILD/bench_tab_agreement_optimization"
# perf_micro: the CSR / sweep / optimizer trajectory benches. The
# heavyweight *_FullRecompute and *_Exhaustive ablation baselines are
# excluded on purpose - they exist to measure one-off speedup factors,
# not to be tracked per commit. The MapSources trio and RoleFilter pair
# ARE tracked including their baselines (AtomicCursor, Scalar): they are
# cheap, and gating both sides keeps the work-stealing and SIMD speedup
# ratios visible in the committed JSON, not just asserted once. The Obs
# pair gates the per-record overhead of the metrics layer itself
# (counter = one sharded relaxed add, histogram = two) so accidental
# fattening of the record path is caught like any other regression -
# including the slow-query ring's worst-case eviction scan
# (Obs_SlowlogRecord) and the whole per-request stage-clock +
# observation cost on the cache-served fast path (Serve_StageClock).
# The sharded-serving pair gates the 4-shard what-if fan-out + fold
# (Serve_ShardedWhatIf - its utility_sum must keep matching
# QueryEngine_WhatIfBatched, the byte-identity fingerprint) and the
# mmap-only cold start off the primed-baseline section
# (SnapshotLoad_PrimedBaseline).
# Default --benchmark_min_time stays: the rotating-source micro benches
# need enough iterations to average the heavy-tailed per-source costs,
# or run-to-run noise defeats the 30% regression gate.
"$BUILD/bench_perf_micro" \
  --benchmark_filter='BM_(RoleLookup|Length3Enumeration|CompileTopology|ScenarioSweep_Incremental|Optimizer_Greedy|SnapshotLoad_Mmap|SnapshotLoad_PrimedBaseline|QueryEngine_CachedSource|MapSources|RoleFilter|Obs|Serve_StageClock|Serve_ShardedWhatIf|Convergence)'

echo "bench suite results in $OUT:"
ls -l "$OUT"
