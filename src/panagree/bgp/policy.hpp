// Routing policies over an AS relationship graph, compiled to SPP instances.
//
// The Gao-Rexford conditions (GRC) consist of (i) export rules - routes
// learned from peers/providers are only exported to customers; customer
// routes go to everyone - and (ii) the preference rule customer > peer >
// provider. Under these rules BGP provably converges; the policy compiler
// here enumerates exactly the GRC-permitted (valley-free) paths with GRC
// ranking, so instances built from it converge in the SPVP simulator.
//
// GRC-violating "mutual provider access" policies (the paper's §II sibling
// example) are compiled by make_mutual_transit_spp and feed the DISAGREE /
// BAD GADGET demonstrations.
//
// Both compilers run on the shared paths::PathEnumerator engine: the graph
// is compiled to a CSR snapshot once, per-node permitted paths are
// enumerated under a valley-free (or mutual-transit-extended) step policy,
// and nodes are fanned out over the parallel source driver. Results are
// deterministic for every thread count.
#pragma once

#include <vector>

#include "panagree/bgp/spp.hpp"
#include "panagree/topology/compiled.hpp"
#include "panagree/topology/graph.hpp"

namespace panagree::bgp {

using topology::Graph;
using topology::NeighborRole;

/// True iff `path` (source first) is valley-free in `graph`: zero or more
/// customer->provider steps, at most one peering step, then zero or more
/// provider->customer steps. Single-AS paths are trivially valley-free.
[[nodiscard]] bool is_valley_free(const Graph& graph,
                                  const std::vector<AsId>& path);

/// True iff every transit AS on the path forwards in accordance with GRC
/// economics: each intermediate AS has the previous or the next hop as a
/// customer. Equivalent to valley-freedom for well-formed paths.
[[nodiscard]] bool grc_forwarding_allowed(const Graph& graph,
                                          const std::vector<AsId>& path);

struct GaoRexfordOptions {
  /// Maximum AS-path length enumerated (including both endpoints).
  std::size_t max_path_length = 6;
  /// Prefer shorter paths within the same relationship class.
  bool shorter_is_better = true;
  /// Worker threads for the per-source enumeration fan-out; 0 = one per
  /// hardware core. Results are identical for every value.
  std::size_t threads = 0;
};

/// Compiles a Gao-Rexford SPP instance for `destination`: permitted paths
/// are all simple valley-free paths up to the length bound, ranked
/// customer-route > peer-route > provider-route, then by length, then
/// lexicographically (a deterministic tie-break).
[[nodiscard]] SppInstance make_gao_rexford_spp(
    const Graph& graph, AsId destination, const GaoRexfordOptions& options = {});

/// Same, over an existing snapshot: callers compiling SPP instances for
/// many destinations of one graph should compile once and use this.
[[nodiscard]] SppInstance make_gao_rexford_spp(
    const topology::CompiledTopology& topo, AsId destination,
    const GaoRexfordOptions& options = {});

/// A GRC-violating "mutual provider access" arrangement: each AS pair listed
/// in `mutual_transit` additionally exchanges routes learned from providers
/// (and prefers routes learned from those peers over its own provider
/// routes, as in the paper's §II DISAGREE construction).
[[nodiscard]] SppInstance make_mutual_transit_spp(
    const Graph& graph, AsId destination,
    const std::vector<std::pair<AsId, AsId>>& mutual_transit,
    const GaoRexfordOptions& options = {});

/// Same, over an existing snapshot (no per-call compilation).
[[nodiscard]] SppInstance make_mutual_transit_spp(
    const topology::CompiledTopology& topo, AsId destination,
    const std::vector<std::pair<AsId, AsId>>& mutual_transit,
    const GaoRexfordOptions& options = {});

}  // namespace panagree::bgp
