// Small derivative-free optimizers for the nonlinear agreement programs.
//
// The flow-volume program (Eq. 9) is a low-dimensional box-constrained
// nonlinear maximization (two variables per agreement segment); Nelder-Mead
// with box projection and multi-start is robust for it. Golden-section
// covers the 1-D subproblems in tests and ablations.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace panagree::bargain {

/// A real-valued objective over R^n.
using Objective = std::function<double(const std::vector<double>&)>;

struct Box {
  std::vector<double> lower;
  std::vector<double> upper;

  [[nodiscard]] std::size_t dimensions() const { return lower.size(); }
  /// Clamps x into the box, component-wise.
  void project(std::vector<double>& x) const;
};

struct NelderMeadOptions {
  std::size_t max_iterations = 2000;
  double tolerance = 1e-10;  ///< spread of simplex values at convergence
  double initial_step = 0.25;  ///< relative to box width per dimension
};

struct OptimizationResult {
  std::vector<double> x;
  double value = 0.0;
  std::size_t iterations = 0;
};

/// Maximizes `f` over the box with Nelder-Mead (projected simplex).
[[nodiscard]] OptimizationResult maximize_nelder_mead(
    const Objective& f, const Box& box, std::vector<double> start,
    const NelderMeadOptions& options = {});

/// Multi-start wrapper: corners/center/random starts, best result wins.
[[nodiscard]] OptimizationResult maximize_multistart(
    const Objective& f, const Box& box, std::size_t extra_random_starts,
    std::uint64_t seed, const NelderMeadOptions& options = {});

/// Maximizes a unimodal 1-D function on [lo, hi] by golden-section search.
[[nodiscard]] double golden_section_maximize(
    const std::function<double(double)>& f, double lo, double hi,
    double tolerance = 1e-10);

}  // namespace panagree::bargain
