// panagree-gen: generate a synthetic Internet-like AS topology and export
// it in the CAIDA as-rel2 format.
//
//   panagree-gen [num_ases] [seed] [output-file]
//
// Defaults: 12000 ASes, seed 424242, stdout. The exported file round-trips
// through topology::caida::parse (geolocation and capacities are derived
// attributes and not part of the as-rel2 format).
#include <fstream>
#include <iostream>
#include <string>

#include "panagree/topology/caida.hpp"
#include "panagree/topology/generator.hpp"

using namespace panagree;

int main(int argc, char** argv) {
  topology::GeneratorParams params;
  params.num_ases = 12000;
  params.tier1_count = 12;
  params.seed = 424242;
  std::string output;
  try {
    if (argc > 1) {
      params.num_ases = std::stoul(argv[1]);
    }
    if (argc > 2) {
      params.seed = std::stoull(argv[2]);
    }
    if (argc > 3) {
      output = argv[3];
    }
  } catch (const std::exception&) {
    std::cerr << "usage: panagree-gen [num_ases] [seed] [output-file]\n";
    return 2;
  }

  try {
    const auto topo = topology::generate_internet(params);
    std::size_t peerings = 0;
    for (const auto& link : topo.graph.links()) {
      if (link.type == topology::LinkType::kPeering) {
        ++peerings;
      }
    }
    std::cerr << "generated " << topo.graph.num_ases() << " ASes, "
              << topo.graph.num_links() << " links (" << peerings
              << " peering / " << topo.graph.num_links() - peerings
              << " provider-customer), " << topo.ixps.size() << " IXPs, "
              << topo.hubs.size() << " open-peering hubs\n";
    if (output.empty()) {
      topology::caida::write(topo.graph, std::cout);
    } else {
      std::ofstream out(output);
      if (!out) {
        std::cerr << "cannot open " << output << " for writing\n";
        return 1;
      }
      topology::caida::write(topo.graph, out);
      std::cerr << "wrote " << output << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
