// Lock-free range-stealing primitive of the work-stealing source driver.
//
// One StealRange holds a worker's remaining slice [begin, end) of the
// global index space, packed as (begin << 32 | end) in a single 64-bit
// atomic. Every ownership transfer is one CAS on that word: the owner
// claims chunks off the front, a thief takes the back half of whatever is
// left. Packing both cursors into one word is what makes the protocol
// trivially overlap-free - a CAS always operates on a consistent
// (begin, end) pair, whereas separate begin/end atomics can hand the same
// index to an owner incrementing begin and a thief decrementing end.
//
// The driver (paths::map_indices) seeds one StealRange per worker with a
// cost-balanced contiguous partition; an idle worker scans its victims
// round-robin and installs the stolen half as its own range, so stolen
// work remains stealable in turn. Indices only ever move between ranges -
// none are created or dropped - which a global remaining-counter in the
// driver turns into a simple termination test.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <new>
#include <span>
#include <utility>
#include <vector>

namespace panagree::paths {

// The std constant is the right alignment for keeping per-worker hot
// atomics off each other's cache lines, but naming it is an ABI-affecting
// choice GCC flags with -Winterference-size; capture it once, silenced,
// and use the local constant everywhere.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
#endif
#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLineAlign =
    std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLineAlign = 64;
#endif
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace detail {

/// A worker's remaining index slice, claimable from the front by its
/// owner and stealable from the back by anyone else. All methods are
/// safe to call concurrently from any thread.
class StealRange {
 public:
  /// Largest chunk an owner claims in one CAS. Bounds how much work can
  /// ride along, unstealable, in a single claim - the work-stealing
  /// equivalent of scheduling granularity.
  static constexpr std::uint32_t kMaxChunk = 256;

  StealRange() = default;

  /// Installs [begin, end) as the current slice. Only valid when the
  /// range is empty (an empty range is never CAS-written by thieves or
  /// owners, so the plain store cannot clobber a concurrent transfer).
  void reset(std::uint32_t begin, std::uint32_t end) {
    range_.store(pack(begin, end), std::memory_order_release);
  }

  /// Claims up to kMaxChunk indices (1/8 of the remainder, at least one)
  /// off the front into [begin, end). Returns false when empty.
  bool try_claim(std::uint32_t& begin, std::uint32_t& end) {
    std::uint64_t packed = range_.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t b = unpack_begin(packed);
      const std::uint32_t e = unpack_end(packed);
      if (b >= e) {
        return false;
      }
      // Geometric decay: big claims amortize the CAS while the range is
      // fat, shrinking claims leave a fine-grained tail for thieves.
      const std::uint32_t chunk =
          std::min({kMaxChunk, std::uint32_t{1} + (e - b) / 8, e - b});
      if (range_.compare_exchange_weak(packed, pack(b + chunk, e),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        begin = b;
        end = b + chunk;
        return true;
      }
    }
  }

  /// Steals the back half into [begin, end). Returns false when fewer
  /// than two indices remain - the last index is left to the owner,
  /// whose claim may already be in flight.
  bool try_steal(std::uint32_t& begin, std::uint32_t& end) {
    std::uint64_t packed = range_.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t b = unpack_begin(packed);
      const std::uint32_t e = unpack_end(packed);
      if (e - b < 2 || b >= e) {
        return false;
      }
      const std::uint32_t mid = b + (e - b) / 2;
      if (range_.compare_exchange_weak(packed, pack(b, mid),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        begin = mid;
        end = e;
        return true;
      }
    }
  }

  /// Indices not yet claimed or stolen (a racing snapshot, like any
  /// concurrent size).
  [[nodiscard]] std::uint32_t remaining() const {
    const std::uint64_t packed = range_.load(std::memory_order_acquire);
    const std::uint32_t b = unpack_begin(packed);
    const std::uint32_t e = unpack_end(packed);
    return b < e ? e - b : 0;
  }

 private:
  static constexpr std::uint64_t pack(std::uint32_t begin,
                                      std::uint32_t end) {
    return (static_cast<std::uint64_t>(begin) << 32) | end;
  }
  static constexpr std::uint32_t unpack_begin(std::uint64_t packed) {
    return static_cast<std::uint32_t>(packed >> 32);
  }
  static constexpr std::uint32_t unpack_end(std::uint64_t packed) {
    return static_cast<std::uint32_t>(packed);
  }

  /// Own cache line: neighboring workers' ranges must not false-share
  /// (the per-item claim traffic of the old single-cursor driver showing
  /// up again through the back door).
  alignas(kCacheLineAlign) std::atomic<std::uint64_t> range_{0};
};

}  // namespace detail

/// Splits [0, count) into `workers` contiguous ranges of roughly equal
/// total cost (equal sizes when `costs` is empty; otherwise costs.size()
/// must be count, every cost >= 0). Ranges cover the space exactly, in
/// order, and may be empty - a single dominant index gets a range of its
/// own while its worker's siblings share the rest. This is the seed
/// layout of the work-stealing driver: balanced seeds make steals rare,
/// and contiguous seeds keep each worker's result writes local.
[[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>>
partition_by_cost(std::span<const std::uint64_t> costs, std::size_t count,
                  std::size_t workers);

}  // namespace panagree::paths
