// Keyed 64-bit MAC for hop-field authentication (SipHash-2-4).
//
// SCION-style PANs protect each hop of a packet-carried forwarding path
// with a MAC computed by the AS that authorized the hop. We implement
// SipHash-2-4 (Aumasson & Bernstein) from scratch; it is compact, fast, and
// exactly the kind of short-input PRF used for hop fields in practice.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>

namespace panagree::pan {

/// A 128-bit MAC key.
struct MacKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;

  friend bool operator==(const MacKey&, const MacKey&) = default;
};

/// SipHash-2-4 over a byte string.
[[nodiscard]] std::uint64_t siphash24(const MacKey& key,
                                      std::span<const std::uint8_t> data);

/// Convenience: SipHash-2-4 over a sequence of 64-bit words (little-endian).
[[nodiscard]] std::uint64_t siphash24_words(
    const MacKey& key, std::initializer_list<std::uint64_t> words);

}  // namespace panagree::pan
