// End-to-end integration: the paper's full story on the Fig. 1 topology.
//
// 1. §II  - BGP needs the GRC (DISAGREE / BAD GADGET), the PAN does not
//           (loop-free source-selected forwarding on GRC-violating paths).
// 2. §III - the agreement a = [D(^{A}); E(^{B}, ->{F})] changes both
//           parties' traffic and utility in the modelled economy.
// 3. §IV  - flow-volume targets and cash compensation structure the
//           agreement so that it is Pareto-optimal and fair.
// 4. §V   - BOSCO negotiates the cash variant under private information.
// 5. data plane: the negotiated paths are constructible from beacons plus
//           agreement crossings, forward loop-free, and the realized flows
//           reproduce the negotiated utility in simulation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "panagree/bgp/gadgets.hpp"
#include "panagree/bgp/simulator.hpp"
#include "panagree/core/agreements/agreement.hpp"
#include "panagree/core/agreements/utility.hpp"
#include "panagree/core/bargain/cash.hpp"
#include "panagree/core/bargain/flow_volume.hpp"
#include "panagree/core/bosco/service.hpp"
#include "panagree/pan/beaconing.hpp"
#include "panagree/pan/forwarding.hpp"
#include "panagree/pan/path_construction.hpp"
#include "panagree/sim/flow_assignment.hpp"
#include "panagree/sim/network.hpp"
#include "panagree/topology/capacity.hpp"
#include "panagree/topology/examples.hpp"

namespace panagree {
namespace {

using topology::AsId;
using topology::make_fig1;

class PaperStory : public ::testing::Test {
 protected:
  PaperStory() : t_(make_fig1()), economy_(t_.graph) {
    topology::assign_degree_gravity_capacities(t_.graph);
    economy_.set_link_pricing(t_.A, t_.D, econ::PricingFunction::per_unit(2.0));
    economy_.set_link_pricing(t_.B, t_.E, econ::PricingFunction::per_unit(2.0));
    economy_.set_link_pricing(t_.A, t_.C, econ::PricingFunction::per_unit(2.0));
    economy_.set_link_pricing(t_.B, t_.G, econ::PricingFunction::per_unit(2.0));
    economy_.set_link_pricing(t_.D, t_.H, econ::PricingFunction::per_unit(2.6));
    economy_.set_link_pricing(t_.E, t_.I, econ::PricingFunction::per_unit(2.6));
    for (AsId as = 0; as < t_.graph.num_ases(); ++as) {
      economy_.set_internal_cost(as, econ::InternalCostFunction::linear(0.05));
      economy_.set_stub_pricing(as, econ::PricingFunction::per_unit(1.0));
    }
    // Base traffic: the customers H and I reach the remote tier over their
    // transit's provider (H -> B via A, I -> A via B), plus local flows.
    base_.add_path_flow(std::vector<AsId>{t_.H, t_.D, t_.A, t_.B}, 4.0);
    base_.add_path_flow(std::vector<AsId>{t_.I, t_.E, t_.B, t_.A}, 4.0);
    base_.add_path_flow(std::vector<AsId>{t_.H, t_.D, t_.A}, 4.0);
    base_.add_path_flow(std::vector<AsId>{t_.I, t_.E, t_.B}, 4.0);
  }

  agreements::Agreement paper_agreement() const {
    agreements::Agreement a;
    a.grant_x.grantor = t_.D;
    a.grant_x.providers = {t_.A};
    a.grant_y.grantor = t_.E;
    a.grant_y.providers = {t_.B};
    a.grant_y.peers = {t_.F};
    return a;
  }

  topology::Fig1 t_;
  econ::Economy economy_;
  econ::TrafficAllocation base_;
};

TEST_F(PaperStory, Section2BgpNeedsGrcButPanDoesNot) {
  // BGP side: the GRC-violating agreement creates a wedgie, and with a
  // second agreement partner a persistent oscillation.
  const auto disagree = bgp::make_fig1_disagree(t_);
  const auto report = bgp::check_safety(disagree, 40, 4);
  EXPECT_TRUE(report.always_converged);
  EXPECT_EQ(report.distinct_outcomes, 2u);
  const auto bad = bgp::make_fig1_bad_gadget(t_);
  EXPECT_EQ(bgp::run_synchronous(bad).outcome, bgp::Outcome::kOscillated);

  // PAN side: the very same GRC-violating path D-E-B-A is simply forwarded
  // along its header, loop-free.
  const pan::KeyStore keys(1, t_.graph.num_ases());
  const pan::ForwardingEngine engine(t_.graph, keys);
  const auto result =
      engine.forward(pan::issue_path(keys, {t_.D, t_.E, t_.B, t_.A}));
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.trace, (std::vector<AsId>{t_.D, t_.E, t_.B, t_.A}));
}

TEST_F(PaperStory, Section3AgreementUtilityHasBothSigns) {
  const agreements::AgreementEvaluator evaluator(economy_, base_);
  // D reroutes its customer traffic for B over E (segment DEB): good for D
  // (provider A avoided), costly for E (Eq. 7 mechanics).
  agreements::TrafficShift shift;
  shift.reroutes.push_back(agreements::Reroute{
      {t_.H, t_.D, t_.A, t_.B}, {t_.H, t_.D, t_.E, t_.B}, 4.0});
  EXPECT_GT(evaluator.utility_change(t_.D, shift), 0.0);
  EXPECT_LT(evaluator.utility_change(t_.E, shift), 0.0);
}

TEST_F(PaperStory, Section4FlowVolumeAndCashBothConclude) {
  bargain::FlowVolumeProblem problem;
  problem.party_x = t_.D;
  problem.party_y = t_.E;
  problem.x_segments.push_back(bargain::SegmentOption{
      {t_.H, t_.D, t_.E, t_.B}, {t_.H, t_.D, t_.A, t_.B}, 4.0, 6.0});
  problem.y_segments.push_back(bargain::SegmentOption{
      {t_.I, t_.E, t_.D, t_.A}, {t_.I, t_.E, t_.B, t_.A}, 4.0, 6.0});
  const agreements::AgreementEvaluator evaluator(economy_, base_);
  const auto volume = bargain::solve_flow_volume(problem, evaluator);
  ASSERT_TRUE(volume.concluded);
  EXPECT_GE(volume.u_x, 0.0);
  EXPECT_GE(volume.u_y, 0.0);

  const auto cash = bargain::negotiate_cash(volume.u_x, volume.u_y);
  ASSERT_TRUE(cash.has_value());
  EXPECT_NEAR(cash->u_x_after, cash->u_y_after, 1e-9);
}

TEST_F(PaperStory, Section5BoscoNegotiatesUnderPrivateInformation) {
  bosco::BoscoService service(
      std::make_unique<bosco::UniformDistribution>(-1.0, 4.0),
      std::make_unique<bosco::UniformDistribution>(-1.0, 4.0),
      bosco::BoscoServiceOptions{
          .trials = 10, .seed = 3, .equilibrium = {}, .truthful_grid = 200});
  const auto info = service.configure(20);
  EXPECT_TRUE(info.converged);
  EXPECT_LT(info.pod, 0.5);
  // Execute with "true" utilities derived from the economic model.
  const auto outcome = bosco::BoscoService::execute(info, 2.4, 1.1);
  if (outcome.concluded) {
    EXPECT_GE(outcome.u_x_after, 0.0);
    EXPECT_GE(outcome.u_y_after, 0.0);
    EXPECT_NEAR(outcome.u_x_after + outcome.u_y_after, 3.5, 1e-9);
  }
}

TEST_F(PaperStory, DataPlaneRealizesTheAgreement) {
  // Control plane: beacons + the agreement's crossings.
  pan::BeaconService beacons(t_.graph);
  beacons.run();
  pan::CrossingRegistry crossings;
  for (const auto& crossing :
       agreements::to_crossings(paper_agreement(), t_.graph)) {
    crossings.add(crossing);
  }
  const pan::PathConstructor constructor(t_.graph, beacons);

  // H (customer of D) can now reach B via the agreement path H-D-E-B.
  const auto paths = constructor.construct(t_.H, t_.B, &crossings);
  const std::vector<AsId> hdeb{t_.H, t_.D, t_.E, t_.B};
  ASSERT_NE(std::find(paths.begin(), paths.end(), hdeb), paths.end());

  // Data plane: the path forwards and delivers in simulated time.
  const pan::KeyStore keys(7, t_.graph.num_ases());
  sim::Network net(t_.graph, keys);
  const auto id = net.send_packet(pan::issue_path(keys, hdeb), 12000.0);
  net.engine().run();
  EXPECT_TRUE(net.deliveries().at(id).delivered);
  EXPECT_EQ(net.deliveries().at(id).trace, hdeb);

  // Fluid accounting: moving 5 units of H->B traffic onto the agreement
  // path is visible in the allocation the economy consumes.
  const sim::FlowAssignmentResult flows = sim::assign_flows(
      t_.graph, {{hdeb, 5.0}, {{t_.I, t_.E, t_.D, t_.A}, 5.0}});
  EXPECT_DOUBLE_EQ(flows.allocation.segment_flow(t_.D, t_.E, t_.B), 5.0);
  EXPECT_DOUBLE_EQ(flows.allocation.segment_flow(t_.E, t_.D, t_.A), 5.0);
  EXPECT_DOUBLE_EQ(flows.allocation.through_flow(t_.E), 10.0);
}

TEST_F(PaperStory, NegotiatedUtilitiesMatchRealizedFlows) {
  // Solve the flow-volume program, then *realize* the targets as flows and
  // re-measure the utility change from scratch: they must agree.
  bargain::FlowVolumeProblem problem;
  problem.party_x = t_.D;
  problem.party_y = t_.E;
  problem.x_segments.push_back(bargain::SegmentOption{
      {t_.H, t_.D, t_.E, t_.B}, {t_.H, t_.D, t_.A, t_.B}, 4.0, 6.0});
  problem.y_segments.push_back(bargain::SegmentOption{
      {t_.I, t_.E, t_.D, t_.A}, {t_.I, t_.E, t_.B, t_.A}, 4.0, 6.0});
  const agreements::AgreementEvaluator evaluator(economy_, base_);
  const auto sol = bargain::solve_flow_volume(problem, evaluator);
  ASSERT_TRUE(sol.concluded);

  agreements::TrafficShift shift;
  if (sol.x_targets[0].rerouted > 0.0) {
    shift.reroutes.push_back(agreements::Reroute{{t_.H, t_.D, t_.A, t_.B},
                                                 {t_.H, t_.D, t_.E, t_.B},
                                                 sol.x_targets[0].rerouted});
  }
  if (sol.x_targets[0].new_demand > 0.0) {
    shift.new_demands.push_back(agreements::NewDemand{
        {t_.H, t_.D, t_.E, t_.B}, sol.x_targets[0].new_demand});
  }
  if (sol.y_targets[0].rerouted > 0.0) {
    shift.reroutes.push_back(agreements::Reroute{{t_.I, t_.E, t_.B, t_.A},
                                                 {t_.I, t_.E, t_.D, t_.A},
                                                 sol.y_targets[0].rerouted});
  }
  if (sol.y_targets[0].new_demand > 0.0) {
    shift.new_demands.push_back(agreements::NewDemand{
        {t_.I, t_.E, t_.D, t_.A}, sol.y_targets[0].new_demand});
  }
  EXPECT_NEAR(evaluator.utility_change(t_.D, shift), sol.u_x, 1e-6);
  EXPECT_NEAR(evaluator.utility_change(t_.E, shift), sol.u_y, 1e-6);
}

}  // namespace
}  // namespace panagree
