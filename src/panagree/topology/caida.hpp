// Reader/writer for the CAIDA AS-relationship "as-rel2" serial format.
//
// The paper's evaluation starts from the CAIDA dataset [8]. The dataset is
// not redistributable with this repository, so experiments default to the
// synthetic generator, but this parser lets users drop in the real file:
//
//   # comment lines start with '#'
//   <provider-asn>|<customer-asn>|-1[|source]
//   <peer-asn>|<peer-asn>|0[|source]
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>

#include "panagree/topology/graph.hpp"

namespace panagree::topology::caida {

/// Result of parsing: the graph plus the ASN <-> AsId correspondence.
struct Dataset {
  Graph graph;
  std::unordered_map<std::uint64_t, AsId> asn_to_id;

  [[nodiscard]] std::uint64_t asn_of(AsId id) const;
};

/// Parses an as-rel2 stream. Throws util::ParseError on malformed lines and
/// on duplicate relationships for the same AS pair.
[[nodiscard]] Dataset parse(std::istream& in);

/// Parses an as-rel2 file from disk.
[[nodiscard]] Dataset parse_file(const std::string& path);

/// Serializes a graph back to as-rel2 (AS names must be numeric or are
/// replaced by their dense ids).
void write(const Graph& graph, std::ostream& out);

}  // namespace panagree::topology::caida
