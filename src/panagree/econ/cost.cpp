#include "panagree/econ/cost.hpp"

#include <cmath>

#include "panagree/util/error.hpp"

namespace panagree::econ {

InternalCostFunction::InternalCostFunction(double base, double unit,
                                           double gamma)
    : base_(base), unit_(unit), gamma_(gamma) {
  util::require(base >= 0.0, "InternalCostFunction: base must be >= 0");
  util::require(unit >= 0.0, "InternalCostFunction: unit must be >= 0");
  util::require(gamma >= 1.0, "InternalCostFunction: gamma must be >= 1");
}

InternalCostFunction InternalCostFunction::linear(double unit) {
  return InternalCostFunction(0.0, unit, 1.0);
}

double InternalCostFunction::operator()(double total_flow) const {
  util::require(total_flow >= 0.0,
                "InternalCostFunction: flow must be non-negative");
  if (total_flow == 0.0) {
    return base_;
  }
  return base_ + unit_ * std::pow(total_flow, gamma_);
}

}  // namespace panagree::econ
