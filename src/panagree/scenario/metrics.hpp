// Per-scenario aggregation: what does one agreement deployment buy?
//
// The sweep's canonical per-source result is the pair of §VI length-3 path
// sets (GRC and MA) enumerated over the overlaid topology - the same
// policies diversity::Length3Analyzer runs on the base snapshot, consulted
// through the Overlay. MetricsAggregator folds a scenario's per-source
// results into operator-facing aggregates:
//
//   * path diversity - total GRC/MA path counts and reachable (src, dst)
//     pairs (diversity/ semantics);
//   * geodistance - the mean best length-3 geodistance over reachable
//     pairs (§VI-B). Hops over base links use the facility-minimizing
//     GeodistanceModel; hops over *added* links (which carry no stored
//     facilities yet) estimate candidate facilities from the endpoint AS
//     PoP sets with the same rule the generator assigns real links
//     (topology::estimate_link_facilities), so a what-if deployment is
//     priced like the recompiled link would be - the endpoint-centroid
//     great-circle legs remain only as a last resort for ASes without
//     PoPs;
//   * transit fees - unit demand per reachable pair routed over its best
//     path, each provider-customer hop charged by econ::Economy. Per-unit
//     evaluation is exact for the linear default economy; added links the
//     economy does not know are settlement-free.
//
// Scenario ranking is the difference against the baseline aggregate
// (subtract()), turned into a scalar by operator_utility().
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <unordered_map>
#include <vector>

#include "panagree/diversity/geodistance.hpp"
#include "panagree/diversity/length3.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/paths/path_pool.hpp"
#include "panagree/scenario/overlay.hpp"

namespace panagree::scenario {

/// The per-source unit of the canonical sweep: every GRC length-3 path of
/// the source plus every MA-only path, in engine enumeration order (so
/// equality is byte-equality of a full recompute).
///
/// Storage is interned: both sets live in one paths::BasicPathPool arena
/// (GRC paths first, then MA), and grc()/ma() are offset-based slices of
/// that single contiguous buffer. SweepRunner caches one of these per
/// source, so the hot incremental-sweep path holds exactly one heap block
/// per cached source instead of the old vector-of-vector pair.
class SourcePathSet {
 public:
  /// Appends a GRC path. All GRC paths must be added before any MA path.
  void add_grc(const diversity::Length3Path& path) {
    PANAGREE_ASSERT(grc_count_ == pool_.size());
    pool_.push_back(path);
    ++grc_count_;
  }

  /// Appends an MA-only path.
  void add_ma(const diversity::Length3Path& path) { pool_.push_back(path); }

  [[nodiscard]] std::span<const diversity::Length3Path> grc() const {
    return pool_.view({0, static_cast<std::uint32_t>(grc_count_)});
  }
  [[nodiscard]] std::span<const diversity::Length3Path> ma() const {
    return pool_.view({grc_count_,
                       static_cast<std::uint32_t>(pool_.size() - grc_count_)});
  }

  friend bool operator==(const SourcePathSet&,
                         const SourcePathSet&) = default;

 private:
  paths::BasicPathPool<diversity::Length3Path> pool_;
  std::size_t grc_count_ = 0;
};

/// Enumerates the §VI length-3 path sets of `src` over the overlaid
/// topology. On an empty overlay this reproduces
/// diversity::Length3Analyzer::{grc_paths, ma_paths} exactly.
[[nodiscard]] SourcePathSet enumerate_length3(const Overlay& overlay,
                                              AsId src);

/// The sweep invalidation radius that is *exact* for enumerate_length3:
/// a length-3 path S-M-D only uses links whose nearer endpoint is S
/// (distance 0) or M (distance 1), and the MA policy's off-path role
/// checks only ever involve the (S, D) pair - endpoint S, distance 0. So
/// a source farther than 1 hop from every changed-link endpoint keeps its
/// baseline result verbatim (scenario_test proves byte-identity at this
/// radius across randomized deltas). The generic bound for a max_len-AS
/// walk is max_len - 2 for on-path links, +1 if a policy consults role
/// pairs not anchored at the source.
inline constexpr std::size_t kLength3DirtyRadius = 1;

/// The additive per-source slice of a scenario aggregate: ScenarioMetrics
/// minus the final mean division, so contributions of individual sources
/// can be cached, swapped, and re-summed without touching the others.
/// This is what lets a deployment optimizer keep one evaluated candidate's
/// dirty-source slices and re-score the candidate in O(sources) additions
/// after the surrounding program grew elsewhere.
struct SourceContribution {
  std::size_t grc_paths = 0;
  std::size_t ma_paths = 0;
  std::size_t grc_pairs = 0;
  std::size_t ma_extra_pairs = 0;
  /// Sum of best-path geodistances of this source's reachable pairs with
  /// geodata, and how many pairs contributed.
  double km_sum = 0.0;
  std::size_t km_pairs = 0;
  double transit_fees = 0.0;

  SourceContribution& operator+=(const SourceContribution& other) {
    grc_paths += other.grc_paths;
    ma_paths += other.ma_paths;
    grc_pairs += other.grc_pairs;
    ma_extra_pairs += other.ma_extra_pairs;
    km_sum += other.km_sum;
    km_pairs += other.km_pairs;
    transit_fees += other.transit_fees;
    return *this;
  }

  friend bool operator==(const SourceContribution&,
                         const SourceContribution&) = default;
};

/// Aggregates of one scenario over the analyzed sources.
struct ScenarioMetrics {
  std::size_t grc_paths = 0;
  std::size_t ma_paths = 0;
  /// (src, dst) pairs with at least one GRC path.
  std::size_t grc_pairs = 0;
  /// Additional (src, dst) pairs reachable only via MA paths.
  std::size_t ma_extra_pairs = 0;
  /// Mean best-path geodistance over reachable pairs (0 without geodata).
  double mean_best_geodistance_km = 0.0;
  /// Aggregate transit fees of unit demand per reachable pair.
  double transit_fees = 0.0;
};

/// Folds a summed SourceContribution into the operator-facing aggregate
/// (the mean-geodistance division happens here, once).
[[nodiscard]] ScenarioMetrics finalize(const SourceContribution& total);

/// The §VI diversity counters of one scenario stripped to the additive
/// integer core (no geodistance or fee folds) - the per-failure-set unit
/// of the k-failure headline metric, cheap enough to recompute once per
/// enumerated failure set.
struct DiversityCounts {
  std::size_t grc_paths = 0;
  std::size_t ma_paths = 0;
  std::size_t grc_pairs = 0;
  std::size_t ma_extra_pairs = 0;

  [[nodiscard]] std::size_t total_paths() const {
    return grc_paths + ma_paths;
  }
  [[nodiscard]] std::size_t reachable_pairs() const {
    return grc_pairs + ma_extra_pairs;
  }

  friend bool operator==(const DiversityCounts&,
                         const DiversityCounts&) = default;
};

/// Folds per-source path sets (the SweepRunner reference shape) into
/// DiversityCounts. Pair semantics match MetricsAggregator::aggregate: a
/// destination with any GRC path is a grc_pair, one reached only by MA
/// paths an ma_extra_pair.
[[nodiscard]] DiversityCounts count_diversity(
    std::span<const SourcePathSet* const> results);

/// Diversity surviving k link failures: the §VI GRC/MA counts
/// re-evaluated under every enumerated (or budget-sampled) k-failure set,
/// folded to the worst case and the mean - "how much of the path-aware
/// agreement value is still there when links go down", the headline
/// what-if metric of the dynamics layer (scenario::failure_diversity
/// computes it through the incremental sweep machinery).
struct FailureDiversity {
  std::size_t sets = 0;       ///< failure sets evaluated
  /// Counters of the worst failure set (fewest surviving GRC+MA paths,
  /// ties to the lower set index).
  DiversityCounts min;
  std::size_t worst_set = 0;  ///< index of that set in the evaluated list
  double mean_paths = 0.0;    ///< mean surviving GRC+MA paths
  double mean_pairs = 0.0;    ///< mean surviving reachable pairs
};

/// Elementwise scenario - baseline (size_t fields as signed deltas via
/// doubles would lose exactness; kept as a dedicated type instead).
struct MetricsDelta {
  double paths = 0.0;
  double pairs = 0.0;
  double mean_best_geodistance_km = 0.0;
  double transit_fees = 0.0;
};

[[nodiscard]] MetricsDelta subtract(const ScenarioMetrics& scenario,
                                    const ScenarioMetrics& baseline);

/// A scalar "is this deployment worth it" score: fees saved plus a reward
/// per newly reachable pair minus a penalty per km of mean-geodistance
/// regression. The weights are knobs, not doctrine.
struct UtilityWeights {
  double per_new_pair = 0.5;
  double per_km_regression = 0.02;
};

[[nodiscard]] double operator_utility(const MetricsDelta& delta,
                                      const UtilityWeights& weights = {});

class MetricsAggregator {
 public:
  /// `world` == nullptr disables the geodistance aggregate (and best paths
  /// fall back to first-enumerated). All referenced objects must outlive
  /// the aggregator.
  MetricsAggregator(const CompiledTopology& base, const geo::World* world,
                    const econ::Economy* economy);

  /// Folds the per-source results of one scenario (results[i] belongs to
  /// sources[i], the shape SweepRunner produces). Thread-safe per call.
  [[nodiscard]] ScenarioMetrics aggregate(
      const Overlay& overlay, const std::vector<AsId>& sources,
      const std::vector<SourcePathSet>& results) const;

  /// Pointer variant for zero-copy sweeps: SweepRunner::evaluate_visit
  /// hands out references into its cache, so a scenario can be aggregated
  /// without duplicating any cache-served path set.
  [[nodiscard]] ScenarioMetrics aggregate(
      const Overlay& overlay, const std::vector<AsId>& sources,
      const std::vector<const SourcePathSet*>& results) const;

  /// Reusable per-call working memory of contribution(): the
  /// best-path-per-destination map keeps its bucket array across sources
  /// and the estimated facilities of overlay-added links are memoized per
  /// synthetic link id. One Scratch serves any number of contribution()
  /// calls (it resets itself when the overlay changes); give each
  /// concurrent caller its own.
  class Scratch {
   public:
    Scratch() = default;

   private:
    friend class MetricsAggregator;
    struct Best {
      diversity::Length3Path path;
      double km = std::numeric_limits<double>::infinity();
      bool has_km = false;
      bool grc_reachable = false;
    };
    const Overlay* overlay_ = nullptr;
    std::unordered_map<AsId, Best> best_;
    /// Reused sort buffer: contribution() folds destinations in sorted
    /// order so its float sums are history-independent (see the .cpp).
    /// Pointers stay valid during the fold (best_ is not mutated).
    std::vector<std::pair<AsId, const Best*>> dst_order_;
    /// Estimated facilities keyed by overlay-added link id (valid for
    /// overlay_ only).
    std::unordered_map<std::uint32_t, std::vector<std::size_t>>
        added_facilities_;
  };

  /// The additive slice one source's path sets contribute to the
  /// scenario aggregate; aggregate() is exactly finalize() of the sum of
  /// these in source order. Thread-safe per call with distinct Scratch
  /// objects, like aggregate().
  [[nodiscard]] SourceContribution contribution(const Overlay& overlay,
                                                const SourcePathSet& result,
                                                Scratch& scratch) const;

  /// Convenience overload with throwaway working memory; use the Scratch
  /// overload when folding many sources of the same scenario.
  [[nodiscard]] SourceContribution contribution(
      const Overlay& overlay, const SourcePathSet& result) const {
    Scratch scratch;
    return contribution(overlay, result, scratch);
  }

  /// Geodistance of s-m-d over the overlay. Hops over overlay-added links
  /// use facilities estimated from the endpoint PoP sets (see the header
  /// comment); only ASes without PoPs fall back to endpoint-centroid
  /// legs. Requires geodata (world != nullptr).
  [[nodiscard]] double path_geodistance_km(const Overlay& overlay, AsId s,
                                           AsId m, AsId d) const;

  /// Transit fees of routing `volume` over `path` (>= 2 linked ASes)
  /// under the overlay: every provider-customer hop is charged by the
  /// economy's pricing for that link, whichever direction the walk
  /// crosses it; peering and unknown (overlay-added) links are
  /// settlement-free. The single fee convention shared by aggregate()
  /// and the sweep benches.
  [[nodiscard]] double path_fee(const Overlay& overlay,
                                std::span<const AsId> path,
                                double volume) const;

 private:
  /// path_geodistance_km with the Scratch's added-facility memo (nullptr
  /// = no memoization, the public overload's behavior).
  [[nodiscard]] double path_geodistance_km(
      const Overlay& overlay, AsId s, AsId m, AsId d,
      std::unordered_map<std::uint32_t, std::vector<std::size_t>>* memo)
      const;

  const CompiledTopology* base_;
  const geo::World* world_;
  const econ::Economy* economy_;
  std::optional<diversity::GeodistanceModel> geodesy_;
  /// Facility-count cap for estimating overlay-added links: the maximum
  /// stored on any base link (so a what-if hop minimizes over no more
  /// facilities than its recompiled version would, whatever
  /// max_facilities_per_link the topology was built with); the generator
  /// default when the base graph stores none.
  std::size_t max_estimated_facilities_ = 3;
};

}  // namespace panagree::scenario
