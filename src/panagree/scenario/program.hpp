// Agreement programs: ordered sequences of link-delta batches.
//
// A single Delta answers "what if we deployed these links tomorrow"; an
// operator planning a build-out wants the *sequenced* version - deploy a
// hub peering first, then the regional links it unlocks, each step
// evaluated against the cumulative state of everything before it. Program
// models exactly that: an ordered list of steps (each a Delta) whose
// prefixes compose into cumulative deltas over the same base snapshot.
//
// Composition is defined by compose(base, step): the step's removals are
// folded first (cancelling links the base delta added - a later step can
// retire an earlier step's deployment), then its additions are appended.
// The composed delta is an ordinary Delta, so applying it through
// scenario::Overlay keeps the engine's central guarantee at every prefix:
// the overlaid view is row-order-identical to recompiling the graph with
// the first k steps applied (scenario_program_test locks this in).
#pragma once

#include <cstddef>
#include <vector>

#include "panagree/scenario/overlay.hpp"

namespace panagree::scenario {

/// Merges `step` onto `base`, both deltas relative to the same snapshot.
/// Removals in `step` of a pair added by `base` cancel that addition
/// (leaving the pair in its base-graph state, or removed if `base` also
/// removed it - the rewire case); other removals and all additions are
/// appended. Throws util::PreconditionError when `step` re-adds a pair
/// `base` already adds (retire it first) - full validation against the
/// snapshot still happens in Overlay::apply.
[[nodiscard]] Delta compose(const Delta& base, const Delta& step);

/// Endpoints of every link `delta` adds or removes, sorted and deduplicated
/// - the seed set of the delta's invalidation ball.
[[nodiscard]] std::vector<AsId> touched_ases(const Delta& delta);

/// An ordered deployment program. Steps are pushed one at a time; every
/// prefix's cumulative delta is precomputed, so composed(k) is O(1).
class Program {
 public:
  Program() = default;

  /// Appends a step. Throws util::PreconditionError if the step does not
  /// compose onto the current cumulative delta (see compose()); the
  /// program is unchanged on failure.
  void push(Delta step);

  [[nodiscard]] std::size_t size() const { return steps_.size(); }
  [[nodiscard]] bool empty() const { return steps_.empty(); }
  [[nodiscard]] const std::vector<Delta>& steps() const { return steps_; }
  [[nodiscard]] const Delta& step(std::size_t i) const;

  /// Cumulative delta of the first `prefix` steps; composed(0) is the
  /// empty delta, composed(size()) the whole program.
  [[nodiscard]] const Delta& composed(std::size_t prefix) const;

  /// The whole program as one delta.
  [[nodiscard]] const Delta& composed() const { return composed(size()); }

 private:
  std::vector<Delta> steps_;
  /// prefixes_[k] = compose of steps [0, k); prefixes_[0] is empty.
  std::vector<Delta> prefixes_{Delta{}};
};

}  // namespace panagree::scenario
