#include "panagree/bgp/analysis.hpp"

#include "panagree/bgp/policy.hpp"
#include "panagree/bgp/simulator.hpp"
#include "panagree/paths/enumerator.hpp"

namespace panagree::bgp {

std::vector<Path> enumerate_valley_free_paths(const Graph& graph, AsId src,
                                              AsId dst, std::size_t max_len) {
  util::require(src < graph.num_ases() && dst < graph.num_ases(),
                "enumerate_valley_free_paths: AS out of range");
  return enumerate_valley_free_paths(topology::CompiledTopology(graph), src,
                                     dst, max_len);
}

std::vector<Path> enumerate_valley_free_paths(
    const topology::CompiledTopology& topo, AsId src, AsId dst,
    std::size_t max_len) {
  util::require(src < topo.num_ases() && dst < topo.num_ases(),
                "enumerate_valley_free_paths: AS out of range");
  const paths::PathEnumerator enumerator(topo);
  return enumerator.paths_between(src, dst, max_len,
                                  paths::ValleyFreeStep{});
}

int route_relationship_class(const Graph& graph, const Path& path) {
  if (path.size() < 2) {
    return 0;
  }
  const auto role = graph.role_of(path[0], path[1]);
  util::require(role.has_value(),
                "route_relationship_class: first hop is not a link");
  switch (*role) {
    case topology::NeighborRole::kCustomer:
      return 0;
    case topology::NeighborRole::kPeer:
      return 1;
    case topology::NeighborRole::kProvider:
      return 2;
  }
  return 3;
}

StabilityProfile profile_stability(const SppInstance& instance) {
  StabilityProfile profile;
  profile.stable_solutions = find_stable_solutions(instance).size();
  profile.safe_under_synchronous =
      run_synchronous(instance).outcome == Outcome::kConverged;
  return profile;
}

}  // namespace panagree::bgp
