#include "panagree/topology/graph.hpp"

#include <algorithm>
#include <deque>

namespace panagree::topology {

AsId Graph::add_as(std::string name) {
  const auto id = static_cast<AsId>(infos_.size());
  AsInfo info;
  info.name = name.empty() ? "AS" + std::to_string(id) : std::move(name);
  util::require(!name_index_.contains(info.name),
                "Graph::add_as: duplicate AS name");
  name_index_.emplace(info.name, id);
  infos_.push_back(std::move(info));
  adjacency_.emplace_back();
  return id;
}

Graph Graph::restore(std::vector<AsInfo> infos, std::vector<Link> links) {
  Graph g;
  g.infos_ = std::move(infos);
  g.links_ = std::move(links);
  const std::size_t n = g.infos_.size();
  g.adjacency_.resize(n);
  g.name_index_.reserve(n);
  for (AsId as = 0; as < n; ++as) {
    const std::string& name = g.infos_[as].name;
    util::require(!name.empty(), "Graph::restore: empty AS name");
    util::require(g.name_index_.emplace(name, as).second,
                  "Graph::restore: duplicate AS name");
  }
  g.link_index_.reserve(g.links_.size());
  // Two passes: size the adjacency vectors exactly, then fill them in
  // link-id order (the order sequential add_* calls would have produced).
  std::vector<std::uint32_t> providers(n, 0), peers(n, 0), customers(n, 0);
  for (const Link& l : g.links_) {
    util::require(l.a < n && l.b < n,
                  "Graph::restore: link endpoint out of range");
    util::require(l.a != l.b, "Graph::restore: self-loop");
    if (l.type == LinkType::kProviderCustomer) {
      ++customers[l.a];
      ++providers[l.b];
    } else {
      ++peers[l.a];
      ++peers[l.b];
    }
  }
  for (AsId as = 0; as < n; ++as) {
    g.adjacency_[as].providers.reserve(providers[as]);
    g.adjacency_[as].peers.reserve(peers[as]);
    g.adjacency_[as].customers.reserve(customers[as]);
  }
  for (LinkId id = 0; id < g.links_.size(); ++id) {
    const Link& l = g.links_[id];
    util::require(g.link_index_.emplace(pair_key(l.a, l.b), id),
                  "Graph::restore: duplicate link pair");
    if (l.type == LinkType::kProviderCustomer) {
      g.adjacency_[l.a].customers.push_back(l.b);
      g.adjacency_[l.b].providers.push_back(l.a);
    } else {
      g.adjacency_[l.a].peers.push_back(l.b);
      g.adjacency_[l.b].peers.push_back(l.a);
    }
  }
  return g;
}

std::uint64_t Graph::pair_key(AsId x, AsId y) {
  const AsId lo = std::min(x, y);
  const AsId hi = std::max(x, y);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

void Graph::check_new_link(AsId x, AsId y) const {
  util::require(x < num_ases() && y < num_ases(),
                "Graph: link endpoint out of range");
  util::require(x != y, "Graph: self-loops are not allowed");
  util::require(!link_index_.contains(pair_key(x, y)),
                "Graph: at most one relationship per AS pair");
}

LinkId Graph::add_provider_customer(AsId provider, AsId customer) {
  check_new_link(provider, customer);
  const LinkId id = links_.size();
  links_.push_back(Link{provider, customer, LinkType::kProviderCustomer, {}, 0.0});
  link_index_.emplace(pair_key(provider, customer), id);
  adjacency_[provider].customers.push_back(customer);
  adjacency_[customer].providers.push_back(provider);
  return id;
}

LinkId Graph::add_peering(AsId x, AsId y) {
  check_new_link(x, y);
  const LinkId id = links_.size();
  links_.push_back(Link{x, y, LinkType::kPeering, {}, 0.0});
  link_index_.emplace(pair_key(x, y), id);
  adjacency_[x].peers.push_back(y);
  adjacency_[y].peers.push_back(x);
  return id;
}

const Link& Graph::link(LinkId id) const {
  util::require(id < links_.size(), "Graph::link: id out of range");
  return links_[id];
}

Link& Graph::link(LinkId id) {
  util::require(id < links_.size(), "Graph::link: id out of range");
  return links_[id];
}

const AsInfo& Graph::info(AsId as) const {
  util::require(as < infos_.size(), "Graph::info: AS out of range");
  return infos_[as];
}

AsInfo& Graph::info(AsId as) {
  util::require(as < infos_.size(), "Graph::info: AS out of range");
  return infos_[as];
}

const std::vector<AsId>& Graph::providers(AsId as) const {
  util::require(as < adjacency_.size(), "Graph::providers: AS out of range");
  return adjacency_[as].providers;
}

const std::vector<AsId>& Graph::peers(AsId as) const {
  util::require(as < adjacency_.size(), "Graph::peers: AS out of range");
  return adjacency_[as].peers;
}

const std::vector<AsId>& Graph::customers(AsId as) const {
  util::require(as < adjacency_.size(), "Graph::customers: AS out of range");
  return adjacency_[as].customers;
}

std::vector<AsId> Graph::neighbors(AsId as) const {
  const auto& adj = adjacency_.at(as);
  std::vector<AsId> out;
  out.reserve(degree(as));
  out.insert(out.end(), adj.providers.begin(), adj.providers.end());
  out.insert(out.end(), adj.peers.begin(), adj.peers.end());
  out.insert(out.end(), adj.customers.begin(), adj.customers.end());
  return out;
}

std::size_t Graph::degree(AsId as) const {
  const auto& adj = adjacency_.at(as);
  return adj.providers.size() + adj.peers.size() + adj.customers.size();
}

std::optional<LinkId> Graph::link_between(AsId x, AsId y) const {
  const auto id = link_index_.find(pair_key(x, y));
  if (!id.has_value()) {
    return std::nullopt;
  }
  return static_cast<LinkId>(*id);
}

std::optional<NeighborRole> Graph::role_of(AsId x, AsId y) const {
  const auto id = link_between(x, y);
  if (!id) {
    return std::nullopt;
  }
  const Link& l = links_[*id];
  if (l.type == LinkType::kPeering) {
    return NeighborRole::kPeer;
  }
  return l.a == y ? NeighborRole::kProvider : NeighborRole::kCustomer;
}

bool Graph::are_peers(AsId x, AsId y) const {
  return role_of(x, y) == NeighborRole::kPeer;
}

bool Graph::is_provider_of(AsId provider, AsId customer) const {
  return role_of(customer, provider) == NeighborRole::kProvider;
}

bool Graph::is_customer_of(AsId customer, AsId provider) const {
  return is_provider_of(provider, customer);
}

bool Graph::provider_hierarchy_is_acyclic() const {
  // Kahn's algorithm over provider->customer edges.
  std::vector<std::size_t> in_degree(num_ases(), 0);
  for (AsId as = 0; as < num_ases(); ++as) {
    in_degree[as] = adjacency_[as].providers.size();
  }
  std::deque<AsId> ready;
  for (AsId as = 0; as < num_ases(); ++as) {
    if (in_degree[as] == 0) {
      ready.push_back(as);
    }
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const AsId as = ready.front();
    ready.pop_front();
    ++visited;
    for (const AsId customer : adjacency_[as].customers) {
      if (--in_degree[customer] == 0) {
        ready.push_back(customer);
      }
    }
  }
  return visited == num_ases();
}

bool Graph::is_connected() const {
  if (num_ases() == 0) {
    return true;
  }
  std::vector<bool> seen(num_ases(), false);
  std::deque<AsId> frontier{0};
  seen[0] = true;
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const AsId as = frontier.front();
    frontier.pop_front();
    ++visited;
    for_each_neighbor(as, [&](const AsId n) {
      if (!seen[n]) {
        seen[n] = true;
        frontier.push_back(n);
      }
    });
  }
  return visited == num_ases();
}

AsId Graph::find_by_name(const std::string& name) const {
  const auto it = name_index_.find(name);
  return it == name_index_.end() ? kInvalidAs : it->second;
}

const char* to_string(NeighborRole role) {
  switch (role) {
    case NeighborRole::kProvider:
      return "provider";
    case NeighborRole::kPeer:
      return "peer";
    case NeighborRole::kCustomer:
      return "customer";
  }
  return "?";
}

const char* to_string(LinkType type) {
  switch (type) {
    case LinkType::kProviderCustomer:
      return "provider-customer";
    case LinkType::kPeering:
      return "peering";
  }
  return "?";
}

std::vector<AsId> customer_cone(const Graph& graph, AsId as) {
  util::require(as < graph.num_ases(), "customer_cone: AS out of range");
  std::vector<bool> seen(graph.num_ases(), false);
  std::deque<AsId> frontier{as};
  seen[as] = true;
  std::vector<AsId> cone;
  while (!frontier.empty()) {
    const AsId cur = frontier.front();
    frontier.pop_front();
    cone.push_back(cur);
    for (const AsId customer : graph.customers(cur)) {
      if (!seen[customer]) {
        seen[customer] = true;
        frontier.push_back(customer);
      }
    }
  }
  std::sort(cone.begin(), cone.end());
  return cone;
}

}  // namespace panagree::topology
