// Lock-free slow-query ring: a fixed-size, power-of-two-slot buffer
// holding the slowest requests the serving layer has seen, published
// with per-slot seqlocks so writers never block each other and readers
// never block writers.
//
// Shape of the problem: the serving hot path must record a slow request
// with a handful of relaxed atomic stores (no mutex, no allocation),
// while an operator asking for the `slowlog` wire kind takes a
// consistent snapshot at any moment. Classic seqlock, adapted for
// TSan-cleanliness: each slot carries a sequence word (even = stable,
// odd = writer inside) and stores its payload in plain relaxed
// std::atomic<uint64_t> fields, so a reader racing a writer performs no
// data race - it merely observes a sequence mismatch and discards the
// copy.
//
// Writer protocol (record):
//   1. Drop the record if wall_ns < threshold_ns (the --slow-ms /
//      PANAGREE_SLOW_MS knob; 0 captures everything).
//   2. Scan for a victim slot: the first never-written slot (seq == 0),
//      else the stable slot with the smallest wall_ns. If the ring is
//      full and the record is no slower than the current minimum, drop
//      it - this is what keeps the "slowest N" invariant.
//   3. CAS the victim's seq even -> odd to claim it (losing the race
//      just rescans; after a few attempts the record is dropped -
//      monitoring is best-effort by design), store the payload fields
//      relaxed, then publish with a release store of seq + 2.
//
// Reader protocol (snapshot): per slot, load seq (acquire), skip odd or
// zero, copy the fields relaxed, fence, re-load seq; keep the copy only
// if the sequence did not move. Results are sorted slowest-first with a
// full-record tiebreak so a snapshot is a deterministic function of the
// set of published records - the `slowlog` wire response byte-stability
// test leans on this.
//
// The record struct is macro-independent plain data (the wire parser
// builds them client-side); only the ring itself compiles to a no-op
// under PANAGREE_OBS_OFF.
#pragma once

#include <cstdint>
#include <vector>

#if !defined(PANAGREE_OBS_OFF)
#include <array>
#include <atomic>
#include <bit>
#include <memory>

#include "panagree/obs/metrics.hpp"  // detail::kCacheLine
#endif

namespace panagree::obs {

/// One captured request. `kind` is a small caller-defined code (the
/// serve layer maps its RequestKind enum through it - obs stays
/// protocol-agnostic); the five stage fields sum to wall_ns by
/// construction on the serve side.
struct SlowQueryRecord {
  std::uint64_t wire_id = 0;
  std::uint64_t kind = 0;
  std::uint64_t source = 0;
  std::uint64_t delta_links = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t queue_ns = 0;
  std::uint64_t parse_ns = 0;
  std::uint64_t engine_ns = 0;
  std::uint64_t serialize_ns = 0;
  std::uint64_t send_ns = 0;

  friend bool operator==(const SlowQueryRecord&,
                         const SlowQueryRecord&) = default;
};

/// Number of uint64 payload fields in a SlowQueryRecord (slot layout).
inline constexpr std::size_t kSlowQueryFields = 10;

/// Default ring capacity (slots) for SlowQueryLog::global().
inline constexpr std::size_t kDefaultSlowLogSlots = 64;

/// Default capture threshold: 10 ms. Tools override it from --slow-ms /
/// PANAGREE_SLOW_MS.
inline constexpr std::uint64_t kDefaultSlowThresholdNs = 10'000'000;

/// Deterministic snapshot order: wall_ns descending, then the remaining
/// fields ascending as a total tiebreak. Exposed so tests and the wire
/// layer agree on what "sorted" means.
[[nodiscard]] bool slow_record_before(const SlowQueryRecord& a,
                                      const SlowQueryRecord& b) noexcept;

#if defined(PANAGREE_OBS_OFF)

inline namespace obs_off {

class SlowQueryLog {
 public:
  explicit SlowQueryLog(std::size_t = kDefaultSlowLogSlots) {}

  [[nodiscard]] static SlowQueryLog& global() {
    static SlowQueryLog instance;
    return instance;
  }

  void set_threshold_ns(std::uint64_t) noexcept {}
  [[nodiscard]] std::uint64_t threshold_ns() const noexcept { return 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return 0; }
  void record(const SlowQueryRecord&) noexcept {}
  [[nodiscard]] std::vector<SlowQueryRecord> snapshot() const {
    return {};
  }
  void clear() noexcept {}
};

}  // namespace obs_off

#else  // !PANAGREE_OBS_OFF

inline namespace obs_on {

class SlowQueryLog {
 public:
  /// `slots` is rounded up to the next power of two (minimum 1).
  explicit SlowQueryLog(std::size_t slots = kDefaultSlowLogSlots);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// The process-wide ring the serving layer records into
  /// (kDefaultSlowLogSlots slots, kDefaultSlowThresholdNs threshold).
  [[nodiscard]] static SlowQueryLog& global();

  /// Capture threshold in nanoseconds; records with wall_ns below it
  /// are dropped. 0 captures every request.
  void set_threshold_ns(std::uint64_t ns) noexcept;
  [[nodiscard]] std::uint64_t threshold_ns() const noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_n_; }

  /// Offers a record to the ring (lock-free, best-effort; see the
  /// writer protocol above).
  void record(const SlowQueryRecord& rec) noexcept;

  /// Consistent copies of every published slot, sorted by
  /// slow_record_before. Never blocks writers.
  [[nodiscard]] std::vector<SlowQueryRecord> snapshot() const;

  /// Resets every slot to never-written (test hook; concurrent writers
  /// may immediately repopulate).
  void clear() noexcept;

 private:
  struct alignas(detail::kCacheLine) Slot {
    std::atomic<std::uint64_t> seq{0};
    std::array<std::atomic<std::uint64_t>, kSlowQueryFields> fields{};
  };

  std::size_t slots_n_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> threshold_ns_{kDefaultSlowThresholdNs};
};

}  // namespace obs_on

#endif  // PANAGREE_OBS_OFF

}  // namespace panagree::obs
