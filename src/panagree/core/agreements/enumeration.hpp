// Whole-topology MA enumeration (§VI): one mutuality-based agreement per
// peer pair. For Internet-scale graphs the diversity analysis works from
// the implicit MA rule instead (panagree/diversity), so materialization is
// optional; the ranked per-AS view feeds the "Top n" scenarios.
#pragma once

#include <vector>

#include "panagree/core/agreements/agreement.hpp"

namespace panagree::agreements {

/// All MAs of the topology (one per peer pair with at least one non-empty
/// grant). Quadratic in peer degree; intended for small/medium graphs.
[[nodiscard]] std::vector<Agreement> enumerate_all_mas(const Graph& graph);

/// A candidate MA of `as` with one of its peers, ranked by direct gain.
struct RankedMa {
  AsId peer = topology::kInvalidAs;
  std::size_t new_destinations = 0;  ///< destinations `as` would gain
};

/// Candidate MAs of `as` sorted by descending gain (ties by peer id).
[[nodiscard]] std::vector<RankedMa> rank_mas_for(const Graph& graph, AsId as);

}  // namespace panagree::agreements
