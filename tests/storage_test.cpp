// Property tests of the storage layer: a written .pansnap, mapped back,
// must be indistinguishable from the in-process pipeline - same Graph and
// World tables, byte-identical CSR arrays, identical path-enumeration
// results at any thread count - and malformed files must be rejected, not
// crashed on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "panagree/scenario/metrics.hpp"
#include "panagree/scenario/overlay.hpp"
#include "panagree/paths/parallel.hpp"
#include "panagree/storage/format.hpp"
#include "panagree/storage/snapshot.hpp"
#include "panagree/topology/caida.hpp"
#include "panagree/topology/capacity.hpp"
#include "panagree/topology/compiled.hpp"
#include "panagree/topology/generator.hpp"

namespace panagree::storage {
namespace {

using topology::AsId;
using topology::CompiledTopology;
using topology::GeneratedTopology;
using topology::Graph;

/// A writable temp path, removed at scope exit. The pid suffix keeps
/// concurrent test processes (ctest -j runs each case separately) from
/// racing on the same file.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(std::string(::testing::TempDir()) + name + "." +
              std::to_string(::getpid())) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

GeneratedTopology make_fixture(std::size_t ases, std::uint64_t seed) {
  topology::GeneratorParams params;
  params.num_ases = ases;
  params.tier1_count = 5;
  params.seed = seed;
  GeneratedTopology topo = topology::generate_internet(params);
  topology::assign_degree_gravity_capacities(topo.graph);
  return topo;
}

void expect_graphs_equal(const Graph& actual, const Graph& expected) {
  ASSERT_EQ(actual.num_ases(), expected.num_ases());
  ASSERT_EQ(actual.num_links(), expected.num_links());
  for (AsId as = 0; as < expected.num_ases(); ++as) {
    const topology::AsInfo& a = actual.info(as);
    const topology::AsInfo& e = expected.info(as);
    EXPECT_EQ(a.name, e.name) << "as " << as;
    EXPECT_EQ(a.tier, e.tier) << "as " << as;
    EXPECT_EQ(a.region, e.region) << "as " << as;
    EXPECT_EQ(a.pops, e.pops) << "as " << as;
    EXPECT_EQ(a.centroid, e.centroid) << "as " << as;
    EXPECT_EQ(a.has_geo, e.has_geo) << "as " << as;
    EXPECT_EQ(actual.providers(as), expected.providers(as)) << "as " << as;
    EXPECT_EQ(actual.peers(as), expected.peers(as)) << "as " << as;
    EXPECT_EQ(actual.customers(as), expected.customers(as)) << "as " << as;
  }
  for (topology::LinkId id = 0; id < expected.num_links(); ++id) {
    const topology::Link& a = actual.link(id);
    const topology::Link& e = expected.link(id);
    EXPECT_EQ(a.a, e.a) << "link " << id;
    EXPECT_EQ(a.b, e.b) << "link " << id;
    EXPECT_EQ(a.type, e.type) << "link " << id;
    EXPECT_EQ(a.facilities, e.facilities) << "link " << id;
    EXPECT_EQ(a.capacity, e.capacity) << "link " << id;
  }
}

void expect_worlds_equal(const geo::World& actual,
                         const geo::World& expected) {
  ASSERT_EQ(actual.cities().size(), expected.cities().size());
  ASSERT_EQ(actual.regions().size(), expected.regions().size());
  for (std::size_t c = 0; c < expected.cities().size(); ++c) {
    EXPECT_EQ(actual.cities()[c].name, expected.cities()[c].name);
    EXPECT_EQ(actual.cities()[c].location, expected.cities()[c].location);
    EXPECT_EQ(actual.cities()[c].region, expected.cities()[c].region);
  }
  for (std::size_t r = 0; r < expected.regions().size(); ++r) {
    EXPECT_EQ(actual.regions()[r].name, expected.regions()[r].name);
    EXPECT_EQ(actual.regions()[r].center, expected.regions()[r].center);
    EXPECT_EQ(actual.regions()[r].radius_km, expected.regions()[r].radius_km);
    EXPECT_EQ(actual.regions()[r].city_ids, expected.regions()[r].city_ids);
  }
}

/// The tentpole property: the mmap'd CSR view is byte-identical to the
/// in-process compile (same row order, same ids, same entry bytes).
void expect_csr_identical(const CompiledTopology& view,
                          const CompiledTopology& compiled) {
  EXPECT_FALSE(view.owns_storage());
  EXPECT_TRUE(compiled.owns_storage());
  EXPECT_TRUE(std::ranges::equal(view.row_start_array(),
                                 compiled.row_start_array()));
  EXPECT_TRUE(std::ranges::equal(view.providers_end_array(),
                                 compiled.providers_end_array()));
  EXPECT_TRUE(std::ranges::equal(view.peers_end_array(),
                                 compiled.peers_end_array()));
  ASSERT_EQ(view.entry_array().size(), compiled.entry_array().size());
  EXPECT_TRUE(
      std::ranges::equal(view.entry_array(), compiled.entry_array()));
}

/// Writer determinism: the same topology serializes to the same bytes
/// (entry padding is zeroed by the writer; nothing indeterminate leaks
/// into the file).
TEST(SnapshotRoundTrip, WritesAreByteDeterministic) {
  const GeneratedTopology topo = make_fixture(120, 8);
  const CompiledTopology compiled(topo.graph);
  TempFile a("deterministic_a.pansnap");
  TempFile b("deterministic_b.pansnap");
  write_snapshot(a.path(), topo, compiled);
  write_snapshot(b.path(), topo, compiled);
  const auto read_all = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string bytes_a = read_all(a.path());
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, read_all(b.path()));
}

TEST(SnapshotRoundTrip, SyntheticTopologySurvivesWriteAndMmap) {
  const GeneratedTopology topo = make_fixture(400, 2024);
  const CompiledTopology compiled(topo.graph);
  TempFile file("roundtrip_synthetic.pansnap");
  write_snapshot(file.path(), topo, compiled);

  const MappedSnapshot snapshot = MappedSnapshot::open(file.path());
  expect_graphs_equal(snapshot.graph(), topo.graph);
  expect_worlds_equal(snapshot.world(), topo.world);
  EXPECT_EQ(snapshot.tier1(), topo.tier1);
  EXPECT_EQ(snapshot.tier2(), topo.tier2);
  EXPECT_EQ(snapshot.tier3(), topo.tier3);
  expect_csr_identical(snapshot.topology(), compiled);
}

TEST(SnapshotRoundTrip, SeededVariantsSurvive) {
  for (const std::uint64_t seed : {1ull, 7ull, 31337ull}) {
    const GeneratedTopology topo = make_fixture(150, seed);
    const CompiledTopology compiled(topo.graph);
    TempFile file("roundtrip_seed.pansnap");
    write_snapshot(file.path(), topo, compiled);
    const MappedSnapshot snapshot = MappedSnapshot::open(file.path());
    expect_graphs_equal(snapshot.graph(), topo.graph);
    expect_csr_identical(snapshot.topology(), compiled);
  }
}

TEST(SnapshotRoundTrip, CaidaFixtureSurvives) {
  auto dataset =
      topology::caida::parse_file(PANAGREE_TEST_DATA_DIR
                                  "/as-rel2-small.txt");
  GeneratedTopology topo =
      topology::embed_relationship_graph(std::move(dataset.graph), 424242);
  topology::assign_degree_gravity_capacities(topo.graph);
  const CompiledTopology compiled(topo.graph);
  TempFile file("roundtrip_caida.pansnap");
  write_snapshot(file.path(), topo, compiled);

  const MappedSnapshot snapshot = MappedSnapshot::open(file.path());
  expect_graphs_equal(snapshot.graph(), topo.graph);
  expect_worlds_equal(snapshot.world(), topo.world);
  expect_csr_identical(snapshot.topology(), compiled);
}

TEST(SnapshotRoundTrip, BehavioralLookupsMatchOwningCompile) {
  const GeneratedTopology topo = make_fixture(300, 5);
  const CompiledTopology compiled(topo.graph);
  TempFile file("roundtrip_lookup.pansnap");
  write_snapshot(file.path(), topo, compiled);
  const MappedSnapshot snapshot = MappedSnapshot::open(file.path());
  const CompiledTopology& view = snapshot.topology();

  ASSERT_EQ(view.num_ases(), compiled.num_ases());
  util::Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const auto x = static_cast<AsId>(rng.uniform_index(view.num_ases()));
    const auto y = static_cast<AsId>(rng.uniform_index(view.num_ases()));
    EXPECT_EQ(view.role_of(x, y), compiled.role_of(x, y));
    EXPECT_EQ(view.link_between(x, y), compiled.link_between(x, y));
    EXPECT_EQ(view.degree(x), compiled.degree(x));
  }
}

TEST(SnapshotRoundTrip, PathEnumerationIdenticalAtAnyThreadCount) {
  const GeneratedTopology topo = make_fixture(400, 99);
  const CompiledTopology compiled(topo.graph);
  TempFile file("roundtrip_paths.pansnap");
  write_snapshot(file.path(), topo, compiled);
  const MappedSnapshot snapshot = MappedSnapshot::open(file.path());

  std::vector<AsId> sources;
  for (AsId src = 0; src < compiled.num_ases(); src += 3) {
    sources.push_back(src);
  }
  const scenario::Overlay in_process(compiled);
  const std::vector<scenario::SourcePathSet> expected = paths::map_sources(
      sources, 1, [&](AsId src) {
        return scenario::enumerate_length3(in_process, src);
      });
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const scenario::Overlay mapped(snapshot.topology());
    const std::vector<scenario::SourcePathSet> actual = paths::map_sources(
        sources, threads, [&](AsId src) {
          return scenario::enumerate_length3(mapped, src);
        });
    EXPECT_EQ(actual, expected) << threads << " threads";
  }
}

// ------------------------------------------------------------- rejection

/// Writes a valid snapshot, then hands the raw bytes to `corrupt` and
/// writes them back - every mutation must be rejected with SnapshotError.
template <typename Corrupt>
void expect_rejected(const Corrupt& corrupt, const char* what) {
  const GeneratedTopology topo = make_fixture(60, 3);
  const CompiledTopology compiled(topo.graph);
  TempFile file("rejection.pansnap");
  write_snapshot(file.path(), topo, compiled);

  std::string bytes;
  {
    std::ifstream in(file.path(), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  corrupt(bytes);
  {
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW((void)MappedSnapshot::open(file.path()), SnapshotError)
      << what;
}

TEST(SnapshotRejection, BadMagic) {
  expect_rejected([](std::string& bytes) { bytes[0] = 'X'; }, "bad magic");
}

TEST(SnapshotRejection, VersionMismatch) {
  expect_rejected(
      [](std::string& bytes) {
        const std::uint32_t version = kFormatVersion + 1;
        std::memcpy(bytes.data() + 8, &version, sizeof(version));
      },
      "future version");
}

TEST(SnapshotRejection, EndiannessMismatch) {
  expect_rejected(
      [](std::string& bytes) {
        std::swap(bytes[12], bytes[15]);
        std::swap(bytes[13], bytes[14]);
      },
      "byte-swapped endian probe");
}

TEST(SnapshotRejection, TruncatedFiles) {
  // Truncation anywhere - inside the header, the section table, or a
  // payload - must reject, never read out of bounds.
  for (const double fraction : {0.1, 0.5, 0.9, 0.99}) {
    expect_rejected(
        [fraction](std::string& bytes) {
          bytes.resize(static_cast<std::size_t>(
              static_cast<double>(bytes.size()) * fraction));
        },
        "truncated file");
  }
  expect_rejected([](std::string& bytes) { bytes.resize(4); },
                  "no full header");
}

TEST(SnapshotRejection, TrailingGarbageChangesFileSize) {
  expect_rejected([](std::string& bytes) { bytes.append(64, '\0'); },
                  "grown file");
}

TEST(SnapshotRejection, OutOfRangeCsrEntry) {
  // Flip an entry's neighbor to an out-of-range id: the reader's CSR
  // validation must catch it. The kEntries section is located through the
  // section table, mirroring the reader.
  expect_rejected(
      [](std::string& bytes) {
        FileHeader header;
        std::memcpy(&header, bytes.data(), sizeof(header));
        for (std::uint64_t i = 0; i < header.section_count; ++i) {
          SectionRecord record;
          std::memcpy(&record,
                      bytes.data() + header.section_table_offset +
                          i * sizeof(SectionRecord),
                      sizeof(record));
          if (record.kind ==
              static_cast<std::uint32_t>(SectionKind::kEntries)) {
            const std::uint32_t bogus = 0xFFFFFFFF;
            std::memcpy(bytes.data() + record.offset, &bogus,
                        sizeof(bogus));
            return;
          }
        }
        FAIL() << "kEntries section not found";
      },
      "out-of-range CSR entry");
}

TEST(SnapshotRejection, MissingFileThrows) {
  EXPECT_THROW((void)MappedSnapshot::open("/nonexistent/path/to.pansnap"),
               SnapshotError);
}

}  // namespace
}  // namespace panagree::storage
