#include "panagree/storage/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "panagree/storage/format.hpp"

namespace panagree::storage {

namespace {

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw SnapshotError("MmapFile: " + std::string(what) + " '" + path +
                      "': " + std::strerror(errno));
}

}  // namespace

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    this->~MmapFile();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
}

bool MmapFile::advise(std::size_t offset, std::size_t length,
                      Advice advice) const {
  if (data_ == nullptr || length == 0 || offset >= size_) {
    return false;
  }
  length = std::min(length, size_ - offset);
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::size_t start = offset & ~(page - 1);
  const std::size_t end = offset + length;
  int request = 0;
  switch (advice) {
    case Advice::kWillNeed:
      request = MADV_WILLNEED;
      break;
    case Advice::kHugePage:
#ifdef MADV_HUGEPAGE
      request = MADV_HUGEPAGE;
      break;
#else
      return false;
#endif
  }
  return ::madvise(const_cast<std::byte*>(data_) + start, end - start,
                   request) == 0;
}

MmapFile MmapFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    fail(path, "cannot open");
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail(path, "cannot stat");
  }
  MmapFile out;
  out.size_ = static_cast<std::size_t>(st.st_size);
  if (out.size_ > 0) {
    void* mapped =
        ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      out.size_ = 0;
      fail(path, "cannot mmap");
    }
    out.data_ = static_cast<const std::byte*>(mapped);
  }
  // The mapping survives the descriptor.
  ::close(fd);
  return out;
}

}  // namespace panagree::storage
