// Figure 3: distribution (CDF) of ASes with respect to the number of
// length-3 paths starting at the AS, under increasing degrees of MA
// conclusion: GRC only, Top-1/Top-5/Top-50 own MAs, all own MAs (MA*), and
// all MAs including indirectly gained paths (MA).
//
// Also prints the §VI-A in-text statistics: average and maximum number of
// additional MA paths per analyzed AS (paper, on the full CAIDA graph:
// average 22,891, maximum 196,796 - absolute values scale with graph size;
// the orderings and CDF shapes are the reproduction target).
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "panagree/diversity/report.hpp"
#include "panagree/util/stats.hpp"
#include "panagree/util/table.hpp"

namespace {

using namespace panagree;

void print_cdf_table(const std::vector<diversity::ScenarioRow>& rows,
                     const char* tag) {
  std::vector<double> grc, top1, top5, top50, star, all;
  for (const auto& row : rows) {
    grc.push_back(row.grc);
    top1.push_back(row.ma_top[0]);
    top5.push_back(row.ma_top[1]);
    top50.push_back(row.ma_top[2]);
    star.push_back(row.ma_star);
    all.push_back(row.ma_all);
  }
  const double max_value = *std::max_element(all.begin(), all.end());
  const util::Cdf cdf_grc(grc), cdf_1(top1), cdf_5(top5), cdf_50(top50),
      cdf_star(star), cdf_all(all);

  util::Table table({"x", "CDF GRC", "CDF Top1", "CDF Top5", "CDF Top50",
                     "CDF MA*", "CDF MA"});
  for (const double x : util::log_space(1.0, std::max(2.0, max_value), 14)) {
    table.add_row({x, cdf_grc.fraction_at_or_below(x),
                   cdf_1.fraction_at_or_below(x),
                   cdf_5.fraction_at_or_below(x),
                   cdf_50.fraction_at_or_below(x),
                   cdf_star.fraction_at_or_below(x),
                   cdf_all.fraction_at_or_below(x)},
                  3);
  }
  table.print(std::cout);
  std::cout << '\n';
  table.print_csv(std::cout, tag);

  util::Table summary(
      {"series", "mean", "median", "p90", "max"});
  const auto add_summary = [&](const char* name,
                               const std::vector<double>& v) {
    const util::Summary s = util::summarize(v);
    summary.add_row({name, util::format_double(s.mean, 1),
                     util::format_double(s.median, 1),
                     util::format_double(util::percentile(v, 0.9), 1),
                     util::format_double(s.max, 1)});
  };
  add_summary("GRC", grc);
  add_summary("MA* (Top 1)", top1);
  add_summary("MA* (Top 5)", top5);
  add_summary("MA* (Top 50)", top50);
  add_summary("MA*", star);
  add_summary("MA", all);
  std::cout << '\n';
  summary.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "== Figure 3: length-3 paths per AS under MA conclusion "
               "degrees ==\n";
  const auto net = benchcfg::load_internet();
  diversity::DiversityParams params;
  params.sample_sources = benchcfg::num_sources();
  params.seed = benchcfg::kSampleSeed;
  params.threads = benchcfg::num_threads();
  const auto report = diversity::analyze_path_diversity(net.graph(), params);

  std::cout << "analyzed sources: " << report.sources.size() << "\n\n";
  print_cdf_table(report.path_rows, "fig3");

  std::cout << "\n-- §VI-A in-text statistics (additional MA paths per AS) "
               "--\n";
  util::Table stats({"metric", "measured", "paper (70k-AS CAIDA)"});
  stats.add_row({"average additional length-3 paths",
                 util::format_double(report.additional_paths.mean, 1),
                 "22891"});
  stats.add_row({"maximum additional length-3 paths",
                 util::format_double(report.additional_paths.max, 1),
                 "196796"});
  stats.print(std::cout);
  stats.print_csv(std::cout, "fig3_stats");
  std::cout << "\nReproduction target: ordering GRC < Top1 < Top5 < Top50 < "
               "MA* <= MA, with Top-1 already gaining thousands of paths and "
               "MA ~ MA* (most gains are directly negotiated).\n";
  return 0;
}
