// Error handling primitives shared across panagree.
//
// The library uses exceptions for contract violations on the public API
// (invalid arguments, malformed input data) and PANAGREE_ASSERT for internal
// invariants that indicate a bug when violated.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace panagree::util {

/// Thrown when a caller violates a documented precondition of a public API.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when external input (e.g. a CAIDA relationship file) is malformed.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Throws PreconditionError with `message` unless `condition` holds.
inline void require(bool condition, std::string_view message) {
  if (!condition) {
    throw PreconditionError(std::string(message));
  }
}

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::ostringstream os;
  os << "panagree internal invariant violated: " << expr << " at " << file
     << ":" << line;
  throw std::logic_error(os.str());
}
}  // namespace detail

}  // namespace panagree::util

/// Internal invariant check; failure indicates a library bug, not user error.
#define PANAGREE_ASSERT(expr)                                          \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::panagree::util::detail::assert_fail(#expr, __FILE__, __LINE__); \
    }                                                                  \
  } while (false)
