// Mechanism-assisted negotiation with BOSCO (§V).
//
// Two ASes want to conclude a cash-compensation agreement but will not
// reveal their true utilities. The BOSCO service estimates utility
// distributions, constructs choice sets, computes a Nash equilibrium of the
// one-shot bargaining game, and publishes the mechanism-information set.
// The parties verify the equilibrium and play it; the service adjudicates.
#include <cmath>
#include <iostream>
#include <memory>

#include "panagree/core/bosco/service.hpp"
#include "panagree/util/table.hpp"

using namespace panagree;

int main() {
  // The service's belief about each party's utility (in practice derived
  // from transit price heuristics, §V-C1).
  bosco::BoscoService service(
      std::make_unique<bosco::UniformDistribution>(-1.0, 1.0),
      std::make_unique<bosco::UniformDistribution>(-1.0, 1.0),
      bosco::BoscoServiceOptions{
          .trials = 100, .seed = 17, .equilibrium = {}, .truthful_grid = 600});

  // Configure a mechanism with 40 choices per party.
  const bosco::MechanismInfoSet info = service.configure(40);
  std::cout << "BOSCO configuration (W = 40, best of 100 random draws):\n"
            << "  E[N | equilibrium] = " << info.expected_nash << "\n"
            << "  E[N | truthful]    = " << info.expected_truthful << "\n"
            << "  Price of Dishonesty = " << info.pod << "\n"
            << "  active choices: X = " << info.strategy_x.active_choices()
            << ", Y = " << info.strategy_y.active_choices() << "\n\n";

  // The parties can verify the proposed equilibrium themselves (§V-C6).
  const bool verified = bosco::is_nash_equilibrium(
      info.choices_x, info.choices_y, info.strategy_x, info.strategy_y,
      service.dist_x(), service.dist_y());
  std::cout << "Parties verify the equilibrium: "
            << (verified ? "valid - following it is a best response"
                         : "INVALID")
            << "\n\n";

  // Show the equilibrium strategy of party X: a threshold rule mapping true
  // utility intervals to claims (Theorem 4: intervals, never points, so the
  // claim cannot be inverted to the exact utility).
  util::Table strategy({"true utility in", "claim v_X"});
  const auto& starts = info.strategy_x.starts();
  for (std::size_t i = 0; i < info.strategy_x.num_choices(); ++i) {
    if (starts[i] < starts[i + 1]) {
      // Built via += to dodge a gcc 12 -Wrestrict false positive on
      // chained std::string operator+ (GCC bug 105651).
      std::string interval = "[";
      interval += util::format_double(starts[i], 3);
      interval += ", ";
      interval += util::format_double(starts[i + 1], 3);
      interval += ")";
      strategy.add_row(
          {std::move(interval), util::format_double(info.choices_x.value(i), 3)});
    }
  }
  std::cout << "Equilibrium strategy of X (threshold rule):\n";
  strategy.print(std::cout);

  // Play a few negotiations with hidden true utilities.
  std::cout << "\nNegotiations (true utilities are never revealed):\n";
  util::Table games({"true u_X", "true u_Y", "claim v_X", "claim v_Y",
                     "outcome", "Pi X->Y", "u_X after", "u_Y after"});
  const double cases[][2] = {
      {0.8, 0.3}, {0.4, -0.2}, {-0.3, 0.9}, {-0.6, 0.2}, {-0.7, -0.4}};
  for (const auto& c : cases) {
    const auto outcome = bosco::BoscoService::execute(info, c[0], c[1]);
    games.add_row({util::format_double(c[0], 2), util::format_double(c[1], 2),
                   std::isinf(outcome.claim_x)
                       ? "-inf"
                       : util::format_double(outcome.claim_x, 3),
                   std::isinf(outcome.claim_y)
                       ? "-inf"
                       : util::format_double(outcome.claim_y, 3),
                   outcome.concluded ? "concluded" : "cancelled",
                   outcome.concluded
                       ? util::format_double(outcome.transfer_x_to_y, 3)
                       : "-",
                   util::format_double(outcome.u_x_after, 3),
                   util::format_double(outcome.u_y_after, 3)});
  }
  games.print(std::cout);
  std::cout << "\nNote the §V-D guarantees at work: after-negotiation "
               "utilities are never negative (Theorem 1) and concluded "
               "deals always have non-negative joint utility (Theorem 2).\n";
  return 0;
}
