// panagree-sweep: rank candidate interconnection-agreement deployments by
// operator utility over an incremental what-if sweep (the §VIII outlook
// turned into a tool).
//
//   panagree-sweep [scenarios] [top-k] [seed]
//       [--optimize greedy|beam] [--steps N] [--beam W] [--no-share]
//       [--failures K | --fail-ases] [--samples N]
//       [--snapshot FILE] [--threads N] [--pin-threads]
//
// Defaults: 200 candidate deployments, top 10 shown, seed 4242. Every
// candidate is a single new peering link between two ASes that share a
// neighbor today (the "we already meet somewhere" pairs that dominate real
// peering candidacies). Each scenario is evaluated as a Delta over one
// shared CSR snapshot through scenario::SweepRunner - per-source §VI
// length-3 path sets are cached across scenarios and only sources inside
// a candidate's invalidation ball are recomputed - then aggregated into
// path-diversity / geodistance / transit-fee deltas and a scalar utility.
//
// With --optimize the tool emits a ranked deployment *program* instead of
// a one-shot ranking: scenario::Optimizer greedily (or with a beam of
// --beam partial programs) extends the program each round with the
// highest-marginal-utility candidate, rebases the sweep cache onto the
// grown prefix, and shares candidate recomputes across rounds unless
// --no-share. --steps bounds the program length.
//
// With --failures K the tool ranks deployments by *surviving* diversity
// instead of steady-state utility: every candidate is re-evaluated under
// the K-link failure universe (exhaustive when it fits --samples,
// deterministically sampled above it; each failure set is a remove-only
// delta through the same incremental sweep), ranked by the worst-case and
// mean §VI GRC+MA paths that survive. --fail-ases swaps in the
// node-level universe instead: each failure set takes one AS dark
// (scenario::as_failure_delta - every incident link removed at once),
// exhaustive over the graph when it fits --samples and deterministically
// sampled above it, through the identical ranking machinery. Each candidate also reports its
// deployment churn - next-hop changes and convergence rounds of the
// dynamics::converge fixpoint over a destination sample. Output is a pure
// function of the topology and flags: --threads only changes wall-clock
// time (CI diffs the bytes at 1 and 4 threads).
//
// Environment (see bench_common.hpp): PANAGREE_ASES, PANAGREE_SOURCES,
// PANAGREE_THREADS, and PANAGREE_CAIDA to sweep a real CAIDA as-rel2
// topology instead of the synthetic one. --snapshot FILE (or
// PANAGREE_SNAPSHOT) mmaps a compiled .pansnap instead of re-embedding -
// the CSR arrays are served zero-copy out of the file, so repeated sweeps
// of a CAIDA-scale graph skip the entire startup pipeline.
#include <algorithm>
#include <iostream>
#include <numeric>
#include <string>

#include "bench_common.hpp"
#include "cli_common.hpp"
#include "panagree/diversity/report.hpp"
#include "panagree/dynamics/convergence.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/scenario/failure.hpp"
#include "panagree/scenario/metrics.hpp"
#include "panagree/scenario/optimizer.hpp"
#include "panagree/scenario/sweep.hpp"
#include "panagree/util/table.hpp"

using namespace panagree;
using topology::AsId;

namespace {

struct Options {
  std::size_t num_scenarios = 200;
  std::size_t top_k = 10;
  std::uint64_t seed = 4242;
  bool optimize = false;
  bool beam_mode = false;       // --optimize beam
  std::size_t beam_width = 0;   // explicit --beam W, 0 = unset
  std::size_t max_steps = 4;
  bool share = true;
  std::size_t failures = 0;     // --failures K (0 = steady-state modes)
  bool fail_ases = false;       // --fail-ases (AS-level failure universe)
  std::size_t samples = 32;     // --samples N failure-set budget
  std::string snapshot;  // --snapshot FILE (empty = PANAGREE_SNAPSHOT/env)
  /// --threads N (default: the PANAGREE_THREADS env, 0 = hardware).
  std::size_t threads = benchcfg::num_threads();
  /// --pin-threads (default: the PANAGREE_PIN_THREADS env).
  bool pin_threads = cli::env_pin_threads();

  /// Flags are order-insensitive: an explicit --beam always wins, and
  /// --optimize beam without one defaults to width 2 (greedy = 1).
  [[nodiscard]] std::size_t resolved_beam_width() const {
    if (beam_width > 0) {
      return beam_width;
    }
    return beam_mode ? 2 : 1;
  }
};

void usage() {
  std::cerr << "usage: panagree-sweep [scenarios] [top-k] [seed]\n"
            << "           [--optimize greedy|beam] [--steps N] [--beam W]"
               " [--no-share]\n"
            << "           [--failures K | --fail-ases] [--samples N]\n"
            << "           [--snapshot FILE] [--threads N]"
               " [--pin-threads]\n";
}

bool parse_args(int argc, char** argv, Options& options) {
  std::size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      cli::print_version("panagree-sweep");
    } else if (arg == "--optimize") {
      if (i + 1 >= argc) {
        return false;
      }
      const std::string mode = argv[++i];
      if (mode == "greedy") {
        options.optimize = true;
        options.beam_mode = false;
      } else if (mode == "beam") {
        options.optimize = true;
        options.beam_mode = true;
      } else {
        return false;
      }
    } else if (arg == "--steps") {
      if (i + 1 >= argc) {
        return false;
      }
      options.max_steps = std::stoul(argv[++i]);
    } else if (arg == "--beam") {
      if (i + 1 >= argc) {
        return false;
      }
      options.beam_width = std::stoul(argv[++i]);
    } else if (arg == "--failures") {
      if (i + 1 >= argc) {
        return false;
      }
      options.failures = std::stoul(argv[++i]);
      if (options.failures == 0) {
        return false;
      }
    } else if (arg == "--fail-ases") {
      options.fail_ases = true;
    } else if (arg == "--samples") {
      if (i + 1 >= argc) {
        return false;
      }
      options.samples = std::stoul(argv[++i]);
    } else if (arg == "--snapshot") {
      if (i + 1 >= argc) {
        return false;
      }
      options.snapshot = argv[++i];
    } else if (arg == "--threads") {
      options.threads = cli::parse_threads("panagree-sweep", argc, argv, i);
    } else if (arg == "--pin-threads") {
      options.pin_threads = true;
    } else if (arg == "--no-share") {
      options.share = false;
    } else if (positional == 0) {
      options.num_scenarios = std::stoul(arg);
      ++positional;
    } else if (positional == 1) {
      options.top_k = std::stoul(arg);
      ++positional;
    } else if (positional == 2) {
      options.seed = std::stoull(arg);
      ++positional;
    } else {
      return false;
    }
  }
  return true;
}

std::string describe(const scenario::Delta& delta) {
  std::string out;
  for (const scenario::LinkChange& link : delta.add) {
    if (!out.empty()) {
      out += ", ";
    }
    out += (link.type == topology::LinkType::kPeering ? "peer AS" : "transit AS");
    out += std::to_string(link.a) + " - AS" + std::to_string(link.b);
  }
  for (const auto& [x, y] : delta.remove) {
    if (!out.empty()) {
      out += ", ";
    }
    out += "retire AS" + std::to_string(x) + " - AS" + std::to_string(y);
  }
  return out;
}

/// --fail-ases: the node-level failure universe. Every target AS goes
/// dark as one remove-only delta of all its incident links; exhaustive
/// over the graph when it fits `max_sets`, otherwise the deterministic
/// sample the shared source sampler picks for `seed` (isolated ASes -
/// nothing to fail - are skipped either way).
scenario::FailureSets as_failure_sets(
    const topology::CompiledTopology& compiled,
    const topology::Graph& graph, std::size_t max_sets,
    std::uint64_t seed) {
  scenario::FailureSets failure;
  failure.universe = graph.num_ases();
  std::vector<AsId> targets;
  if (max_sets > 0 && graph.num_ases() > max_sets) {
    failure.sampled = true;
    targets = diversity::sample_sources(graph, max_sets, seed);
  } else {
    targets.resize(graph.num_ases());
    std::iota(targets.begin(), targets.end(), AsId{0});
  }
  for (const AsId as : targets) {
    scenario::Delta delta = scenario::as_failure_delta(compiled, as);
    if (!delta.remove.empty()) {
      failure.sets.push_back(std::move(delta));
    }
  }
  return failure;
}

/// --failures K / --fail-ases: rank candidate deployments by the
/// diversity surviving the failure universe (K-link sets or single-AS
/// blackouts), with deployment churn + convergence rounds from the
/// dynamics fixpoint engine. Everything printed is a pure function of the
/// topology and flags (CI diffs this output across thread counts).
int run_failure_sweep(const Options& options,
                      const topology::CompiledTopology& compiled,
                      const topology::Graph& graph,
                      const std::vector<AsId>& sources) {
  scenario::SweepConfig config;
  config.threads = options.threads;
  config.dirty_radius = scenario::kLength3DirtyRadius;
  config.exec.pin_threads = options.pin_threads;
  scenario::SweepRunner<scenario::SourcePathSet> runner(compiled, sources,
                                                        config);
  runner.prime([](const scenario::Overlay& overlay, AsId src) {
    return scenario::enumerate_length3(overlay, src);
  });

  const std::string set_kind =
      options.fail_ases ? "AS-failure"
                        : std::to_string(options.failures) + "-link failure";
  const scenario::FailureSets failure =
      options.fail_ases
          ? as_failure_sets(compiled, graph, options.samples, options.seed)
          : scenario::failure_sets(compiled, options.failures,
                                   options.samples, options.seed);
  if (failure.sets.empty()) {
    std::cerr << "error: no " << set_kind << " sets on this topology\n";
    return 1;
  }

  // Steady-state baseline + its diversity under the same failure sets.
  std::vector<const scenario::SourcePathSet*> baseline_refs;
  baseline_refs.reserve(runner.baseline().size());
  for (const scenario::SourcePathSet& sets : runner.baseline()) {
    baseline_refs.push_back(&sets);
  }
  const scenario::DiversityCounts base_counts =
      scenario::count_diversity(baseline_refs);
  const scenario::FailureDiversity base_fd =
      scenario::failure_diversity(runner, scenario::Delta{}, failure.sets);

  // Converged routing tables of a small destination sample - the before
  // side of every candidate's churn report.
  const std::vector<AsId> dests = diversity::sample_sources(
      graph, std::min<std::size_t>(12, graph.num_ases()),
      benchcfg::kSampleSeed + 1);
  const dynamics::RoutingSnapshot base_routes =
      dynamics::converge_all(compiled, dests, options.threads);

  const auto candidates = scenario::candidate_peering_deltas(
      compiled, options.num_scenarios, options.seed);
  if (candidates.size() < options.num_scenarios) {
    std::cerr << "[sweep] only " << candidates.size()
              << " distinct candidates available\n";
  }

  struct Ranked {
    std::size_t scenario = 0;
    scenario::FailureDiversity fd;
    dynamics::ChurnReport churn;
    std::size_t rounds = 0;
    bool converged = true;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    Ranked entry;
    entry.scenario = i;
    entry.fd =
        scenario::failure_diversity(runner, candidates[i], failure.sets);
    scenario::Overlay overlay(compiled);
    overlay.apply(candidates[i]);
    const dynamics::RoutingSnapshot routes =
        dynamics::converge_all(overlay, dests, options.threads);
    entry.churn = dynamics::churn(base_routes, routes);
    entry.rounds = routes.max_rounds;
    entry.converged = routes.all_converged;
    ranked.push_back(std::move(entry));
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a,
                                             const Ranked& b) {
    if (a.fd.min.total_paths() != b.fd.min.total_paths()) {
      return a.fd.min.total_paths() > b.fd.min.total_paths();
    }
    if (a.fd.mean_paths != b.fd.mean_paths) {
      return a.fd.mean_paths > b.fd.mean_paths;
    }
    return a.scenario < b.scenario;
  });

  std::cout << "== panagree-sweep "
            << (options.fail_ases
                    ? std::string("--fail-ases")
                    : "--failures " + std::to_string(options.failures))
            << ": " << candidates.size() << " candidate deployments over "
            << graph.num_ases() << " ASes, " << failure.sets.size() << " "
            << set_kind << " sets ("
            << (failure.sampled ? "sampled from " : "exhaustive of ")
            << failure.universe << ") ==\n"
            << "baseline over " << sources.size()
            << " sources: " << base_counts.grc_paths << " GRC + "
            << base_counts.ma_paths << " MA paths, "
            << base_counts.reachable_pairs() << " reachable pairs\n"
            << "baseline under failures: min " << base_fd.min.total_paths()
            << " paths / " << base_fd.min.reachable_pairs()
            << " pairs (worst set #" << base_fd.worst_set << "), mean "
            << util::format_double(base_fd.mean_paths, 1) << " paths\n"
            << "routing sample: " << dests.size()
            << " destinations, base convergence max "
            << base_routes.max_rounds << " rounds, "
            << base_routes.reachable_pairs << " reachable (dest, AS) pairs\n"
            << "\n";
  if (!base_routes.all_converged) {
    std::cerr << "[sweep] warning: base routing hit the round cap "
                 "(provider cycle?)\n";
  }
  util::Table table({"rank", "deployment", "min paths", "mean paths",
                     "min pairs", "churn", "gained", "rounds"});
  for (std::size_t i = 0; i < std::min(options.top_k, ranked.size()); ++i) {
    const Ranked& r = ranked[i];
    table.add_row({std::to_string(i + 1),
                   describe(candidates[r.scenario]),
                   std::to_string(r.fd.min.total_paths()),
                   util::format_double(r.fd.mean_paths, 1),
                   std::to_string(r.fd.min.reachable_pairs()),
                   std::to_string(r.churn.changed_next_hops),
                   std::to_string(r.churn.routes_gained),
                   std::to_string(r.rounds)});
    if (!r.converged) {
      std::cerr << "[sweep] warning: candidate " << r.scenario
                << " hit the convergence round cap\n";
    }
  }
  table.print(std::cout);
  std::cout << "\nranked by worst-case surviving GRC+MA paths under "
            << (options.fail_ases
                    ? std::string("single-AS")
                    : std::to_string(options.failures) + "-link")
            << " failures (then mean); churn = next-hop changes over "
            << dests.size() << " converged destinations.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  try {
    if (!parse_args(argc, argv, options)) {
      usage();
      return 2;
    }
  } catch (const std::exception&) {
    usage();
    return 2;
  }
  cli::init_tracing();
  const std::size_t num_scenarios = options.num_scenarios;
  const std::size_t top_k = options.top_k;
  const std::uint64_t seed = options.seed;

  try {
    const auto net = benchcfg::load_internet(
        /*synthetic_cap=*/0,
        options.snapshot.empty() ? nullptr : options.snapshot.c_str());
    const topology::CompiledTopology& compiled = net.compiled();
    if (options.pin_threads) {
      // Best-effort NUMA sharding of the CSR pages; a no-op on
      // single-node hosts and results are identical regardless.
      (void)paths::bind_topology_to_nodes(paths::TopologyPlacement::system(),
                                          compiled);
    }
    const econ::Economy economy = econ::make_default_economy(net.graph());
    // A CAIDA graph is embedded with synthetic geodata (and a snapshot
    // stores the world tables), so the world is always usable here.
    const scenario::MetricsAggregator aggregator(compiled, &net.world(),
                                                 &economy);

    const std::vector<AsId> sources = diversity::sample_sources(
        net.graph(), benchcfg::num_sources(), benchcfg::kSampleSeed);

    if (options.failures > 0 || options.fail_ases) {
      if (options.failures > 0 && options.fail_ases) {
        usage();  // one failure universe at a time
        return 2;
      }
      return run_failure_sweep(options, compiled, net.graph(), sources);
    }

    if (options.optimize) {
      const auto candidates =
          scenario::candidate_peering_deltas(compiled, num_scenarios, seed);
      if (candidates.size() < num_scenarios) {
        std::cerr << "[sweep] only " << candidates.size()
                  << " distinct candidates available\n";
      }
      const std::size_t beam_width = options.resolved_beam_width();
      scenario::OptimizerConfig config;
      config.max_steps = options.max_steps;
      config.beam_width = beam_width;
      config.sweep.threads = options.threads;
      config.sweep.dirty_radius = scenario::kLength3DirtyRadius;
      config.sweep.exec.pin_threads = options.pin_threads;
      config.share_recomputes = options.share;
      const scenario::Optimizer optimizer(compiled, sources, aggregator,
                                          config);
      const scenario::OptimizerResult result = optimizer.run(candidates);

      std::cout << "== panagree-sweep --optimize "
                << (beam_width > 1 ? "beam" : "greedy") << ": "
                << candidates.size() << " candidates, "
                << net.graph().num_ases() << " ASes, beam "
                << beam_width << ", max " << options.max_steps
                << " steps ==\n"
                << "baseline over " << sources.size()
                << " sources: " << result.baseline.grc_paths << " GRC + "
                << result.baseline.ma_paths << " MA paths, "
                << result.baseline.grc_pairs + result.baseline.ma_extra_pairs
                << " reachable pairs, fees "
                << util::format_double(result.baseline.transit_fees, 1)
                << "\n\n";
      util::Table table({"step", "deployment", "marginal utility",
                         "cumulative utility", "new paths", "new pairs",
                         "fee delta", "mean km delta"});
      for (std::size_t i = 0; i < result.steps.size(); ++i) {
        const scenario::PlannedStep& step = result.steps[i];
        table.add_row(
            {std::to_string(i + 1), describe(step.delta),
             util::format_double(step.marginal_utility, 2),
             util::format_double(step.cumulative_utility, 2),
             util::format_double(step.marginal.paths, 0),
             util::format_double(step.marginal.pairs, 0),
             util::format_double(step.marginal.transit_fees, 2),
             util::format_double(step.marginal.mean_best_geodistance_km,
                                 2)});
      }
      table.print(std::cout);
      const scenario::OptimizerStats& stats = result.stats;
      std::cout << "\nwork: " << stats.primed_sources
                << " sources primed once, " << stats.recomputed_sources
                << " per-source recomputes across " << stats.scored_candidates
                << " candidate scorings (" << stats.reused_evaluations
                << " served from the shared dirty-set cache"
                << (options.share ? "" : ", sharing disabled") << ")\n"
                << "program utility "
                << util::format_double(
                       result.steps.empty()
                           ? 0.0
                           : result.steps.back().cumulative_utility,
                       2)
                << " vs baseline; utility = fees saved + "
                << scenario::UtilityWeights{}.per_new_pair
                << " * new reachable pairs - "
                << scenario::UtilityWeights{}.per_km_regression
                << " * mean-geodistance regression (km), per unit demand.\n";
      return 0;
    }

    scenario::SweepConfig config;
    config.threads = options.threads;
    config.dirty_radius = scenario::kLength3DirtyRadius;
    config.exec.pin_threads = options.pin_threads;
    scenario::SweepRunner<scenario::SourcePathSet> runner(compiled, sources,
                                                          config);
    const auto enumerate = [](const scenario::Overlay& overlay, AsId src) {
      return scenario::enumerate_length3(overlay, src);
    };
    runner.prime(enumerate);
    const scenario::Overlay base_view(compiled);
    const scenario::ScenarioMetrics baseline =
        aggregator.aggregate(base_view, sources, runner.baseline());
    std::cerr << "[sweep] baseline over " << sources.size()
              << " sources: " << baseline.grc_paths << " GRC + "
              << baseline.ma_paths << " MA paths, "
              << baseline.grc_pairs + baseline.ma_extra_pairs
              << " reachable pairs, fees "
              << util::format_double(baseline.transit_fees, 1) << "\n";

    const auto deltas =
        scenario::candidate_peering_deltas(compiled, num_scenarios, seed);
    if (deltas.size() < num_scenarios) {
      std::cerr << "[sweep] only " << deltas.size()
                << " distinct candidates available\n";
    }

    struct Ranked {
      std::size_t scenario = 0;
      scenario::MetricsDelta delta;
      double utility = 0.0;
      scenario::SweepStats stats;
    };
    std::vector<Ranked> ranked;
    ranked.reserve(deltas.size());
    std::size_t recomputed_total = 0;
    for (std::size_t i = 0; i < deltas.size(); ++i) {
      scenario::Overlay overlay(compiled);
      overlay.apply(deltas[i]);
      Ranked entry;
      entry.scenario = i;
      // Zero-copy: cache-served sources are aggregated straight out of
      // the runner's baseline cache, dirty ones out of its scratch.
      const std::vector<const scenario::SourcePathSet*> results =
          runner.evaluate_refs(deltas[i], enumerate, &entry.stats);
      const scenario::ScenarioMetrics metrics =
          aggregator.aggregate(overlay, sources, results);
      entry.delta = scenario::subtract(metrics, baseline);
      entry.utility = scenario::operator_utility(entry.delta);
      recomputed_total += entry.stats.recomputed_sources;
      ranked.push_back(entry);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked& a, const Ranked& b) {
                if (a.utility != b.utility) {
                  return a.utility > b.utility;
                }
                return a.scenario < b.scenario;
              });

    const std::size_t source_scenarios = deltas.size() * sources.size();
    std::cout << "== panagree-sweep: " << deltas.size()
              << " candidate peering deployments over "
              << net.graph().num_ases() << " ASes ==\n"
              << "per-source recomputes: " << recomputed_total << " of "
              << source_scenarios << " source-scenarios";
    if (source_scenarios > 0) {
      std::cout << " (cache hit "
                << util::format_double(
                       100.0 * (1.0 - static_cast<double>(recomputed_total) /
                                          static_cast<double>(
                                              source_scenarios)),
                       1)
                << "%)";
    }
    std::cout << "\n\n";
    util::Table table({"rank", "deployment", "utility", "new paths",
                       "new pairs", "fee delta", "mean km delta"});
    for (std::size_t i = 0; i < std::min(top_k, ranked.size()); ++i) {
      const Ranked& r = ranked[i];
      const scenario::LinkChange& link = deltas[r.scenario].add.front();
      table.add_row({std::to_string(i + 1),
                     "peer AS" + std::to_string(link.a) + " - AS" +
                         std::to_string(link.b),
                     util::format_double(r.utility, 2),
                     util::format_double(r.delta.paths, 0),
                     util::format_double(r.delta.pairs, 0),
                     util::format_double(r.delta.transit_fees, 2),
                     util::format_double(r.delta.mean_best_geodistance_km, 2)});
    }
    table.print(std::cout);
    std::cout << "\nutility = fees saved + "
              << scenario::UtilityWeights{}.per_new_pair
              << " * new reachable pairs - "
              << scenario::UtilityWeights{}.per_km_regression
              << " * mean-geodistance regression (km), per unit demand.\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
