#include "panagree/serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <utility>

#include "panagree/obs/metrics.hpp"
#include "panagree/serve/shard_router.hpp"

namespace panagree::serve {

namespace {

// Server-level metrics: connection/queue behavior (request-level
// accounting lives in QueryEngine::handle_line, shared with --direct).
struct ServerMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& accepts = reg.counter("server.accepts");
  obs::Counter& backpressure_waits = reg.counter("server.backpressure_waits");
  obs::Counter& send_drops = reg.counter("server.send_drops");
  obs::Counter& oversize_drops = reg.counter("server.oversize_drops");
  obs::Gauge& queue_depth = reg.gauge("server.queue_depth");
  obs::Gauge& queue_depth_hwm = reg.gauge("server.queue_depth_hwm");
};

[[nodiscard]] ServerMetrics& server_metrics() {
  static ServerMetrics metrics;
  return metrics;
}

/// A request line longer than this is rejected and its connection
/// dropped: the protocol's objects are small, so an unbounded line is a
/// broken or hostile client, not a big request.
constexpr std::size_t kMaxLineBytes = 1 << 20;

/// Per-send() blocking bound (SO_SNDTIMEO): a client that stops reading
/// its responses costs a worker at most this long per write attempt
/// before the connection is dropped, so a wedged client can delay the
/// graceful drain but never hang it.
constexpr time_t kSendTimeoutSeconds = 30;

[[noreturn]] void fail(const char* what) {
  throw ServeError(std::string("serve: ") + what + ": " +
                   std::strerror(errno));
}

void validate(const ServerConfig& config) {
  util::require(config.worker_threads > 0,
                "Server: need at least one worker thread");
  util::require(config.reader_threads > 0,
                "Server: need at least one reader thread");
  util::require(config.max_queue > 0, "Server: need a non-empty queue");
}

/// False when the peer is gone or stopped reading (send timeout): the
/// caller drops the connection and the drain continues for the others.
/// EINTR retries: panagree-serve's signal handlers run without
/// SA_RESTART, and a SIGTERM landing on a worker mid-send must not
/// truncate the in-flight response (the drain guarantee).
[[nodiscard]] bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a client that hung up must not SIGPIPE the server.
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

struct Server::Connection {
  explicit Connection(int descriptor) : fd(descriptor) {}
  ~Connection() {
    if (fd >= 0) {
      ::close(fd);
    }
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd = -1;
  /// Serializes response writes from concurrent workers.
  std::mutex write_mutex;
};

struct Server::ReaderShard {
  ~ReaderShard() {
    if (wake_fds[0] >= 0) {
      ::close(wake_fds[0]);
    }
    if (wake_fds[1] >= 0) {
      ::close(wake_fds[1]);
    }
  }

  /// Wakes the reader out of poll(). Best effort: the pipe is
  /// non-blocking, and a full pipe already guarantees a pending wakeup.
  void notify() const {
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(wake_fds[1], &byte, 1);
  }

  /// wake_fds[0] sits in the reader's poll set; everyone else writes a
  /// byte to wake_fds[1] after touching `pending` or `stopping_`.
  int wake_fds[2] = {-1, -1};
  std::thread thread;
  std::mutex mutex;
  /// Dealt by the accept loop, adopted by the reader at its next wakeup.
  std::vector<std::shared_ptr<Connection>> pending;
  /// Mirror of the reader's adopted connections, for stop()'s SHUT_RD
  /// sweep (the reader's own tracking state stays thread-private).
  std::vector<std::shared_ptr<Connection>> live;
};

Server::Server(const QueryEngine& engine, ServerConfig config)
    : handler_([&engine](std::string_view line, std::string& out,
                         RequestStages* stages) {
        engine.handle_line(line, out, stages);
      }),
      config_(config) {
  validate(config_);
}

Server::Server(ShardRouter& router, ServerConfig config)
    : handler_([&router](std::string_view line, std::string& out,
                         RequestStages* stages) {
        router.handle_line(line, out, stages);
      }),
      config_(config) {
  validate(config_);
}

Server::~Server() { stop(); }

void Server::start() {
  util::require(!running_, "Server: already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    fail("socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    fail("bind");
  }
  if (::listen(listen_fd_, 128) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    fail("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  stopping_ = false;
  draining_ = false;
  next_shard_ = 0;
  reader_shards_.reserve(config_.reader_threads);
  for (std::size_t i = 0; i < config_.reader_threads; ++i) {
    auto shard = std::make_unique<ReaderShard>();
    // Non-blocking both ways: the reader drains the pipe without
    // blocking, and notify() never stalls an accept or stop on a full
    // pipe (a full pipe is already a pending wakeup).
    if (::pipe2(shard->wake_fds, O_CLOEXEC | O_NONBLOCK) != 0) {
      const int saved = errno;
      reader_shards_.clear();
      ::close(listen_fd_);
      listen_fd_ = -1;
      errno = saved;
      fail("pipe2");
    }
    reader_shards_.push_back(std::move(shard));
  }
  workers_.reserve(config_.worker_threads);
  try {
    for (const std::unique_ptr<ReaderShard>& shard : reader_shards_) {
      ReaderShard* raw = shard.get();
      raw->thread = std::thread([this, raw] { reader_loop(*raw); });
    }
    for (std::size_t i = 0; i < config_.worker_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
    // Spawned last: on a throw above there is no accept thread to stop.
    accept_thread_ = std::thread([this] { accept_loop(); });
  } catch (...) {
    // Thread spawn failed (resource pressure): release the readers and
    // workers that did start and surface the error instead of
    // terminating on a joinable-thread destructor.
    stopping_ = true;
    for (const std::unique_ptr<ReaderShard>& shard : reader_shards_) {
      shard->notify();
    }
    for (const std::unique_ptr<ReaderShard>& shard : reader_shards_) {
      if (shard->thread.joinable()) {
        shard->thread.join();
      }
    }
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      draining_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
    workers_.clear();
    reader_shards_.clear();
    stopping_ = false;
    draining_ = false;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw;
  }
  running_ = true;
}

void Server::stop() {
  if (!running_) {
    return;
  }
  stopping_ = true;
  // Unblock accept(); the loop exits on the resulting error. After this
  // join no new connections can be dealt to a reader shard.
  ::shutdown(listen_fd_, SHUT_RDWR);
  accept_thread_.join();
  // Shut only the read half of every connection (dealt or adopted):
  // readers see EOF, enqueue any trailing lines, and retire the
  // connections, while pending responses still flush.
  for (const std::unique_ptr<ReaderShard>& shard : reader_shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (const std::shared_ptr<Connection>& conn : shard->pending) {
      ::shutdown(conn->fd, SHUT_RD);
    }
    for (const std::shared_ptr<Connection>& conn : shard->live) {
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
  // Readers blocked on a full queue release on stopping_ (the queue may
  // overshoot its bound by at most one line per reader during the drain).
  space_cv_.notify_all();
  for (const std::unique_ptr<ReaderShard>& shard : reader_shards_) {
    shard->notify();
  }
  for (const std::unique_ptr<ReaderShard>& shard : reader_shards_) {
    shard->thread.join();
  }
  // Every request line is enqueued; let the workers drain the queue.
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    draining_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  reader_shards_.clear();  // closes wake pipes and remaining descriptors
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_ = false;
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_) {
        return;
      }
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      if (errno == EBADF || errno == EINVAL) {
        return;  // listening socket gone; drain what we have
      }
      // Everything else (EMFILE/ENFILE fd pressure, ENOBUFS/ENOMEM,
      // network errnos accept(2) says to retry) must not kill the
      // accept loop silently: say so, shed load briefly, keep going.
      std::cerr << "[serve] accept: " << std::strerror(errno)
                << "; retrying\n";
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (stopping_) {
      ::close(fd);
      return;
    }
    server_metrics().accepts.increment();
    // Bound how long a worker can block writing to a client that
    // stopped reading (see kSendTimeoutSeconds).
    const timeval timeout{.tv_sec = kSendTimeoutSeconds, .tv_usec = 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

    // Deal round-robin: connection counts stay balanced across readers
    // without any shared load accounting.
    ReaderShard& shard = *reader_shards_[next_shard_];
    next_shard_ = (next_shard_ + 1) % reader_shards_.size();
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      shard.pending.push_back(std::make_shared<Connection>(fd));
    }
    shard.notify();
  }
}

void Server::reader_loop(ReaderShard& shard) {
  /// The reader's private per-connection state; `shard.live` mirrors the
  /// conn pointers so stop() can reach the fds without racing us.
  struct Tracked {
    std::shared_ptr<Connection> conn;
    std::string buffer;
  };
  std::vector<Tracked> conns;
  std::vector<pollfd> pfds;
  char chunk[4096];
  const auto drop = [&](std::size_t index) {
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      auto& live = shard.live;
      live.erase(std::remove(live.begin(), live.end(), conns[index].conn),
                 live.end());
    }
    conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(index));
  };
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      for (std::shared_ptr<Connection>& conn : shard.pending) {
        conns.push_back(Tracked{std::move(conn), {}});
        shard.live.push_back(conns.back().conn);
      }
      shard.pending.clear();
    }
    if (stopping_.load(std::memory_order_relaxed) && conns.empty()) {
      return;
    }
    pfds.clear();
    pfds.push_back(pollfd{shard.wake_fds[0], POLLIN, 0});
    for (const Tracked& tracked : conns) {
      pfds.push_back(pollfd{tracked.conn->fd, POLLIN, 0});
    }
    const int ready = ::poll(pfds.data(),
                             static_cast<nfds_t>(pfds.size()), -1);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;  // a signal mid-poll is not an error
      }
      std::cerr << "[serve] poll: " << std::strerror(errno)
                << "; retrying\n";
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (pfds[0].revents != 0) {
      char drained[64];
      while (::read(shard.wake_fds[0], drained, sizeof(drained)) > 0) {
      }
    }
    // Backwards so drop(index) never shifts a conns[i] <-> pfds[i + 1]
    // pairing we have yet to visit.
    for (std::size_t index = conns.size(); index-- > 0;) {
      if (pfds[index + 1].revents == 0) {
        continue;
      }
      Tracked& tracked = conns[index];
      // One recv per readiness: poll() said POLLIN (or HUP/ERR, where
      // recv reports the condition), so a single blocking recv cannot
      // stall the shard's other connections.
      const ssize_t n = ::recv(tracked.conn->fd, chunk, sizeof(chunk), 0);
      if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK)) {
        continue;
      }
      if (n <= 0) {
        // EOF or error. NDJSON convenience first: serve a trailing
        // request the client forgot to newline-terminate before closing
        // its write half.
        if (!tracked.buffer.empty() && tracked.buffer != "\r") {
          enqueue(WorkItem{tracked.conn, std::move(tracked.buffer),
                           stage_now_ns()});
        }
        drop(index);
        continue;
      }
      tracked.buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t begin = 0;
      for (;;) {
        const std::size_t newline = tracked.buffer.find('\n', begin);
        if (newline == std::string::npos) {
          break;
        }
        std::string line = tracked.buffer.substr(begin, newline - begin);
        begin = newline + 1;
        if (!line.empty() && line != "\r") {
          enqueue(WorkItem{tracked.conn, std::move(line), stage_now_ns()});
        }
      }
      tracked.buffer.erase(0, begin);
      if (tracked.buffer.size() > kMaxLineBytes) {
        server_metrics().oversize_drops.increment();
        std::string out;
        append_error_response(out, 0, "request line too long");
        {
          const std::lock_guard<std::mutex> lock(tracked.conn->write_mutex);
          (void)send_all(tracked.conn->fd, out);
        }
        // Read half only: responses for lines already enqueued still
        // flush; the fd closes when the last queued WorkItem releases it.
        ::shutdown(tracked.conn->fd, SHUT_RD);
        drop(index);
      }
    }
  }
}

void Server::enqueue(WorkItem item) {
  ServerMetrics& metrics = server_metrics();
  std::unique_lock<std::mutex> lock(queue_mutex_);
  if (queue_.size() >= config_.max_queue &&
      !stopping_.load(std::memory_order_relaxed)) {
    // The queue bound is backpressure, not a drop: the reader (and with
    // it the shard's clients' TCP windows) stalls until a worker makes
    // room.
    metrics.backpressure_waits.increment();
  }
  space_cv_.wait(lock, [this] {
    return queue_.size() < config_.max_queue ||
           stopping_.load(std::memory_order_relaxed);
  });
  queue_.push_back(std::move(item));
  const auto depth = static_cast<std::int64_t>(queue_.size());
  lock.unlock();
  metrics.queue_depth.set(depth);
  metrics.queue_depth_hwm.update_max(depth);
  queue_cv_.notify_one();
}

void Server::worker_loop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    queue_cv_.wait(lock, [this] { return !queue_.empty() || draining_; });
    if (queue_.empty()) {
      return;  // draining and nothing left
    }
    WorkItem item = std::move(queue_.front());
    queue_.pop_front();
    server_metrics().queue_depth.set(
        static_cast<std::int64_t>(queue_.size()));
    lock.unlock();
    space_cv_.notify_one();

    std::string out;
    RequestStages stages;
    stages.enqueue_ns = item.enqueue_ns;
    handler_(item.line, out, &stages);
    {
      const std::lock_guard<std::mutex> write(item.conn->write_mutex);
      const std::uint64_t send_start_ns = stage_now_ns();
      if (!send_all(item.conn->fd, out)) {
        // Peer gone or not reading (send timeout): drop the connection
        // so its reader retires it and later responses fail fast instead
        // of blocking more workers.
        server_metrics().send_drops.increment();
        ::shutdown(item.conn->fd, SHUT_RDWR);
      }
      stages.send_ns = stage_now_ns() - send_start_ns;
    }
    handled_.fetch_add(1, std::memory_order_relaxed);
    // Observation completes only after the response bytes are on the
    // socket: the send stage is real, and a slowlog request can never
    // observe itself.
    finish_request_observation(stages);
  }
}

}  // namespace panagree::serve
