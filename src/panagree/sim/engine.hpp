// Minimal ns-3-style discrete-event engine: a simulated clock and a
// time-ordered event queue with deterministic FIFO tie-breaking.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "panagree/util/error.hpp"

namespace panagree::sim {

/// Simulated time in seconds.
using SimTime = double;

class Engine {
 public:
  /// Schedules `action` to run `delay` seconds from now (delay >= 0).
  void schedule(SimTime delay, std::function<void()> action);

  /// Schedules `action` at an absolute time (>= now).
  void schedule_at(SimTime when, std::function<void()> action);

  /// Runs events until the queue drains or `until` (default: forever).
  /// Returns the number of events executed.
  std::size_t run(SimTime until = -1.0);

  /// Executes at most one event; returns false if the queue is empty.
  bool step();

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  ///< FIFO tie-break for equal timestamps
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace panagree::sim
