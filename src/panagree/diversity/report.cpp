#include "panagree/diversity/report.hpp"

#include "panagree/paths/parallel.hpp"

namespace panagree::diversity {

std::vector<AsId> sample_sources(const Graph& graph, std::size_t count,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t n = graph.num_ases();
  if (count >= n) {
    std::vector<AsId> all(n);
    for (AsId as = 0; as < n; ++as) {
      all[as] = as;
    }
    return all;
  }
  const auto picks = rng.sample_without_replacement(n, count);
  std::vector<AsId> sources;
  sources.reserve(count);
  for (const std::size_t p : picks) {
    sources.push_back(static_cast<AsId>(p));
  }
  return sources;
}

DiversityReport analyze_path_diversity(const Graph& graph,
                                       const DiversityParams& params) {
  DiversityReport report;
  report.top_ns = params.top_ns;
  report.sources = sample_sources(graph, params.sample_sources, params.seed);

  const Length3Analyzer analyzer(graph);
  std::vector<double> additional_paths;
  std::vector<double> additional_dests;
  additional_paths.reserve(report.sources.size());
  additional_dests.reserve(report.sources.size());

  // Per-source counting is independent: fan out over the parallel driver
  // (results come back in source order, so the rows below are identical
  // for every thread count), then assemble rows serially.
  paths::MapOptions map_options;
  map_options.exec.pin_threads = params.pin_threads;
  const std::vector<SourceCounts> per_source = paths::map_sources(
      report.sources, params.threads,
      [&](AsId src) { return analyzer.count(src, params.top_ns); },
      map_options);

  for (std::size_t i = 0; i < report.sources.size(); ++i) {
    const AsId src = report.sources[i];
    const SourceCounts& c = per_source[i];

    ScenarioRow paths;
    paths.as = src;
    paths.grc = static_cast<double>(c.grc_paths);
    for (const std::size_t top : c.ma_top_paths) {
      paths.ma_top.push_back(paths.grc + static_cast<double>(top));
    }
    paths.ma_star = paths.grc + static_cast<double>(c.ma_direct_paths);
    paths.ma_all = paths.grc + static_cast<double>(c.ma_all_paths);
    report.path_rows.push_back(std::move(paths));

    ScenarioRow dests;
    dests.as = src;
    dests.grc = static_cast<double>(c.grc_dests);
    for (const std::size_t top : c.ma_top_dests) {
      dests.ma_top.push_back(dests.grc + static_cast<double>(top));
    }
    dests.ma_star = dests.grc + static_cast<double>(c.ma_direct_dests);
    dests.ma_all = dests.grc + static_cast<double>(c.ma_all_dests);
    report.dest_rows.push_back(std::move(dests));

    additional_paths.push_back(static_cast<double>(c.ma_all_paths));
    additional_dests.push_back(static_cast<double>(c.ma_all_dests));
  }

  report.additional_paths = util::summarize(additional_paths);
  report.additional_dests = util::summarize(additional_dests);
  return report;
}

}  // namespace panagree::diversity
