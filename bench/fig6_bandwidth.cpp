// Figure 6: bandwidth analysis of MA-created paths (§VI-C).
//
// 6a: CDF over AS pairs of the number of additional MA paths whose
//     (degree-gravity, min-link) bandwidth exceeds the pair's GRC maximum /
//     median / minimum.
// 6b: CDF of the relative bandwidth increase over the pairs that improve.
//
// Paper reference points: 35% of pairs gain a path above the GRC maximum;
// among those, the median relative increase is at least 150%.
#include <iostream>

#include "bench_common.hpp"
#include "panagree/diversity/bandwidth.hpp"
#include "panagree/diversity/report.hpp"
#include "panagree/util/stats.hpp"
#include "panagree/util/table.hpp"

namespace {

using namespace panagree;

}  // namespace

int main() {
  std::cout << "== Figure 6: bandwidth of MA paths vs. GRC baselines ==\n";
  const auto net = benchcfg::load_internet();
  const auto sources = diversity::sample_sources(
      net.graph(), benchcfg::num_sources(), benchcfg::kSampleSeed);
  const auto report = diversity::analyze_bandwidth(net.graph(), sources);
  std::cout << "analyzed AS pairs: " << report.pairs.size() << "\n\n";

  std::vector<double> above_max, above_median, above_min, increases;
  std::size_t improving = 0;
  for (const auto& pair : report.pairs) {
    above_max.push_back(static_cast<double>(pair.ma_paths_above_grc_max));
    above_median.push_back(
        static_cast<double>(pair.ma_paths_above_grc_median));
    above_min.push_back(static_cast<double>(pair.ma_paths_above_grc_min));
    if (pair.relative_increase > 0.0) {
      ++improving;
      increases.push_back(pair.relative_increase);
    }
  }
  const util::Cdf cdf_max(above_max), cdf_median(above_median),
      cdf_min(above_min);

  util::Table fig6a({"x (paths)", "CDF > GRC max", "CDF > GRC median",
                     "CDF > GRC min"});
  for (const double x : util::log_space(1.0, 256.0, 10)) {
    fig6a.add_row({x, cdf_max.fraction_at_or_below(x),
                   cdf_median.fraction_at_or_below(x),
                   cdf_min.fraction_at_or_below(x)},
                  3);
  }
  std::cout << "-- Fig. 6a: #additional MA paths above GRC thresholds --\n";
  fig6a.print(std::cout);
  fig6a.print_csv(std::cout, "fig6a");

  util::Table readout6a({"metric", "measured", "paper"});
  readout6a.add_row(
      {"share of pairs with >=1 MA path > GRC max",
       util::format_double(cdf_max.fraction_above(0.5), 3), "~0.35"});
  std::cout << '\n';
  readout6a.print(std::cout);
  readout6a.print_csv(std::cout, "fig6a_readout");

  std::cout << "\n-- Fig. 6b: relative bandwidth increase (improving pairs: "
            << improving << ") --\n";
  if (!increases.empty()) {
    const util::Cdf cdf_inc(increases);
    util::Table fig6b({"increase", "CDF"});
    for (const double x : util::lin_space(0.0, 14.0, 15)) {
      fig6b.add_row({x, cdf_inc.fraction_at_or_below(x)}, 3);
    }
    fig6b.print(std::cout);
    fig6b.print_csv(std::cout, "fig6b");

    util::Table readout6b({"metric", "measured", "paper"});
    readout6b.add_row(
        {"median relative increase among improving pairs",
         util::format_double(cdf_inc.value_at_fraction(0.5), 3), ">=1.5"});
    std::cout << '\n';
    readout6b.print(std::cout);
    readout6b.print_csv(std::cout, "fig6b_readout");
  }
  return 0;
}
