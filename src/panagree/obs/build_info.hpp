// Build identity: what exactly is this binary? Surfaced by --version in
// every tool, the serve readiness line, and the `stats` response, so a
// bench number or a bug report can always be tied back to a commit and
// a flag set.
//
// The git describe string and configured flags come from a
// CMake-generated header (build_info_gen.hpp, configure-time); compiler
// identity comes from predefined macros (compile-time, so it is correct
// even when CC/CXX differ from the configure-time default).
#pragma once

#include <string>
#include <string_view>

namespace panagree::obs {

struct BuildInfo {
  /// `git describe --always --dirty` at configure time ("unknown" when
  /// not built from a checkout).
  std::string_view git_describe;
  /// Compiler id and version, e.g. "gcc-13.2.0".
  std::string_view compiler;
  /// CMAKE_BUILD_TYPE ("" when unset).
  std::string_view build_type;
  /// The optimization-relevant CXX flags the build was configured with.
  std::string_view flags;
  /// "on" / "off": whether the obs layer records (PANAGREE_OBS_OFF).
  std::string_view obs;
};

/// The process's build identity; all fields refer to static storage.
[[nodiscard]] const BuildInfo& build_info() noexcept;

/// One space-separated `key=value` line:
///   build=<git> compiler=<id> type=<build_type> obs=<on|off>
/// (flags are omitted here - they can contain spaces; --version prints
/// them on their own line).
[[nodiscard]] std::string build_info_line();

}  // namespace panagree::obs
