// Aligned text tables and CSV output for bench harnesses.
//
// Every bench binary prints its figure/table as (a) a human-readable aligned
// table and (b) machine-readable CSV lines prefixed with "csv," so results
// can be grepped out and re-plotted.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace panagree::util {

/// Column-aligned table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row(std::initializer_list<double> cells, int precision = 4);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const { return header_.size(); }

  /// Renders the aligned table.
  void print(std::ostream& os) const;

  /// Renders CSV lines, each prefixed with "csv," for easy extraction.
  void print_csv(std::ostream& os, const std::string& tag) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double trimmed of trailing zeros (e.g. for table cells).
[[nodiscard]] std::string format_double(double value, int precision = 4);

}  // namespace panagree::util
