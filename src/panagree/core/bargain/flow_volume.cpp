#include "panagree/core/bargain/flow_volume.hpp"

#include <algorithm>

namespace panagree::bargain {

namespace {

std::size_t variable_count(const FlowVolumeProblem& problem) {
  return 2 * (problem.x_segments.size() + problem.y_segments.size());
}

void validate_problem(const FlowVolumeProblem& problem) {
  util::require(problem.party_x != problem.party_y,
                "FlowVolumeProblem: parties must differ");
  const auto check = [](const std::vector<SegmentOption>& segments) {
    for (const SegmentOption& s : segments) {
      util::require(s.new_path.size() >= 2,
                    "FlowVolumeProblem: new path too short");
      util::require(s.old_path.size() >= 2,
                    "FlowVolumeProblem: old path too short");
      util::require(s.new_path.front() == s.old_path.front() &&
                        s.new_path.back() == s.old_path.back(),
                    "FlowVolumeProblem: reroute must keep endpoints");
      util::require(s.reroutable >= 0.0 && s.max_new_demand >= 0.0,
                    "FlowVolumeProblem: volumes must be non-negative");
    }
  };
  check(problem.x_segments);
  check(problem.y_segments);
}

}  // namespace

agreements::TrafficShift shift_for_variables(
    const FlowVolumeProblem& problem, const std::vector<double>& variables) {
  util::require(variables.size() == variable_count(problem),
                "shift_for_variables: variable count mismatch");
  agreements::TrafficShift shift;
  std::size_t v = 0;
  const auto add_segments = [&](const std::vector<SegmentOption>& segments) {
    for (const SegmentOption& s : segments) {
      const double reroute = std::max(0.0, variables[v++]);
      const double attracted = std::max(0.0, variables[v++]);
      if (reroute > 0.0) {
        shift.reroutes.push_back(
            agreements::Reroute{s.old_path, s.new_path, reroute});
      }
      if (attracted > 0.0) {
        shift.new_demands.push_back(
            agreements::NewDemand{s.new_path, attracted});
      }
    }
  };
  add_segments(problem.x_segments);
  add_segments(problem.y_segments);
  return shift;
}

FlowVolumeSolution solve_flow_volume(const FlowVolumeProblem& problem,
                                     const AgreementEvaluator& evaluator,
                                     const FlowVolumeSolverOptions& options) {
  validate_problem(problem);
  const std::size_t n = variable_count(problem);

  FlowVolumeSolution solution;
  if (n == 0) {
    return solution;  // nothing to agree on
  }

  Box box;
  box.lower.assign(n, 0.0);
  box.upper.reserve(n);
  const auto push_bounds = [&](const std::vector<SegmentOption>& segments) {
    for (const SegmentOption& s : segments) {
      box.upper.push_back(s.reroutable);
      box.upper.push_back(s.max_new_demand);
    }
  };
  push_bounds(problem.x_segments);
  push_bounds(problem.y_segments);

  const double eps = options.epsilon;
  const Objective objective = [&](const std::vector<double>& vars) {
    const agreements::TrafficShift shift = shift_for_variables(problem, vars);
    const double u_x = evaluator.utility_change(problem.party_x, shift);
    const double u_y = evaluator.utility_change(problem.party_y, shift);
    if (u_x >= -eps && u_y >= -eps) {
      return std::max(0.0, u_x) * std::max(0.0, u_y);
    }
    // Infeasible: steer back towards the feasible region.
    return -(std::max(0.0, -u_x) + std::max(0.0, -u_y));
  };

  OptimizationResult best = maximize_multistart(
      objective, box, options.random_starts, options.seed, options.nelder_mead);

  // The all-zero point (no agreement) is always feasible with N = 0; it is
  // the §IV-C fallback when the program admits only zero targets.
  const std::vector<double> zero(n, 0.0);
  if (best.value <= 0.0) {
    best.x = zero;
    best.value = 0.0;
  }

  const agreements::TrafficShift shift = shift_for_variables(problem, best.x);
  solution.u_x = evaluator.utility_change(problem.party_x, shift);
  solution.u_y = evaluator.utility_change(problem.party_y, shift);
  solution.nash = best.value;

  std::size_t v = 0;
  const auto fill_targets = [&](const std::vector<SegmentOption>& segments,
                                std::vector<FlowVolumeTarget>& targets) {
    for (const SegmentOption& s : segments) {
      FlowVolumeTarget t;
      t.segment = s.new_path;
      t.rerouted = best.x[v++];
      t.new_demand = best.x[v++];
      t.allowance = t.rerouted + t.new_demand;
      targets.push_back(std::move(t));
    }
  };
  fill_targets(problem.x_segments, solution.x_targets);
  fill_targets(problem.y_segments, solution.y_targets);

  double total_allowance = 0.0;
  for (const auto& t : solution.x_targets) {
    total_allowance += t.allowance;
  }
  for (const auto& t : solution.y_targets) {
    total_allowance += t.allowance;
  }
  solution.concluded = solution.nash > eps && total_allowance > eps;
  return solution;
}

}  // namespace panagree::bargain
