// Metric exposition: a plain-data snapshot of the registry plus the two
// text formats built on it (the wire `stats` response lives in
// serve/wire.cpp, Prometheus text here).
//
// MetricsSnapshot is deliberately macro-independent plain data - it is
// also the parse result of a `stats` response on the client side, so it
// must exist (and round-trip) even in a PANAGREE_OBS_OFF build, where
// snapshot_metrics() simply returns an empty snapshot.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "panagree/obs/metrics.hpp"

namespace panagree::obs {

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;

  friend bool operator==(const CounterSample&,
                         const CounterSample&) = default;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;

  friend bool operator==(const GaugeSample&, const GaugeSample&) = default;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  /// Sparse non-empty buckets as (bucket index, count), ascending by
  /// index. Bucket semantics are histogram_bucket()'s log2 rule.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

  friend bool operator==(const HistogramSample&,
                         const HistogramSample&) = default;
};

/// One coherent-enough view of every registered metric, each section
/// sorted ascending by name. "Coherent enough": each metric is read
/// atomically per shard while the registry is locked against
/// registration, but concurrent recorders may land between reads of two
/// different metrics - monitoring precision, not a consistent cut.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

/// Snapshots Registry::global(). Empty under PANAGREE_OBS_OFF.
[[nodiscard]] MetricsSnapshot snapshot_metrics();

/// Re-reads the process-level gauges - `process.uptime_s` (seconds
/// since the library was loaded) and `process.peak_rss_kb` (getrusage
/// peak resident set) - so the next snapshot carries fresh values.
/// Called by the serve layer on every stats/slowlog request; no-op
/// under PANAGREE_OBS_OFF.
void refresh_process_gauges();

/// Nearest-rank percentile estimate from the log2 buckets: the value
/// reported is the inclusive upper bound of the bucket containing the
/// nearest-rank sample (index ceil(p/100 * count), 1-based). Returns 0
/// for an empty histogram.
[[nodiscard]] std::uint64_t histogram_percentile(const HistogramSample& h,
                                                 double percentile);

/// Prometheus text exposition (text format 0.0.4): counters and gauges
/// as single samples, histograms as cumulative `_bucket{le="..."}`
/// series plus `_sum`/`_count`. Metric names are prefixed with
/// `panagree_` and '.' becomes '_'.
[[nodiscard]] std::string to_prometheus_text(const MetricsSnapshot& snap);

}  // namespace panagree::obs
