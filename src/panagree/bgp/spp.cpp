#include "panagree/bgp/spp.hpp"

#include <algorithm>
#include <set>

namespace panagree::bgp {

SppInstance::SppInstance(std::size_t num_nodes, AsId origin)
    : origin_(origin), permitted_(num_nodes) {
  util::require(origin < num_nodes, "SppInstance: origin out of range");
  permitted_[origin] = {Path{origin}};
}

void SppInstance::set_permitted(AsId node, std::vector<Path> ranked) {
  util::require(node < permitted_.size(), "set_permitted: node out of range");
  util::require(node != origin_,
                "set_permitted: the origin's path is fixed to itself");
  for (const Path& p : ranked) {
    util::require(!p.empty() && p.front() == node,
                  "set_permitted: path must start at the owning node");
    util::require(p.back() == origin_,
                  "set_permitted: path must end at the origin");
    std::set<AsId> seen(p.begin(), p.end());
    util::require(seen.size() == p.size(),
                  "set_permitted: path must be simple");
  }
  permitted_[node] = std::move(ranked);
}

const std::vector<Path>& SppInstance::permitted(AsId node) const {
  util::require(node < permitted_.size(), "permitted: node out of range");
  return permitted_[node];
}

int SppInstance::rank_of(AsId node, const Path& path) const {
  const auto& paths = permitted(node);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (paths[i] == path) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<AsId> SppInstance::next_hops(AsId node) const {
  std::set<AsId> hops;
  for (const Path& p : permitted(node)) {
    if (p.size() >= 2) {
      hops.insert(p[1]);
    }
  }
  return {hops.begin(), hops.end()};
}

void SppInstance::validate() const {
  for (AsId node = 0; node < permitted_.size(); ++node) {
    std::set<Path> unique(permitted_[node].begin(), permitted_[node].end());
    util::require(unique.size() == permitted_[node].size(),
                  "SppInstance: duplicate permitted path");
    if (node == origin_) {
      util::require(permitted_[node] == std::vector<Path>{Path{origin_}},
                    "SppInstance: origin must hold exactly its trivial path");
    }
  }
}

Path best_available_path(const SppInstance& instance, AsId node,
                         const Assignment& assignment) {
  if (node == instance.origin()) {
    return Path{node};
  }
  // A permitted path u.v.rest is available iff v currently selects v.rest.
  const auto& ranked = instance.permitted(node);
  for (const Path& candidate : ranked) {
    if (candidate.size() < 2) {
      continue;  // only the origin owns a length-1 path
    }
    const AsId next = candidate[1];
    const Path& next_path = assignment[next];
    if (next_path.size() + 1 == candidate.size() &&
        std::equal(next_path.begin(), next_path.end(),
                   candidate.begin() + 1)) {
      return candidate;
    }
  }
  return {};
}

bool is_stable(const SppInstance& instance, const Assignment& assignment) {
  util::require(assignment.size() == instance.num_nodes(),
                "is_stable: assignment size mismatch");
  for (AsId node = 0; node < instance.num_nodes(); ++node) {
    if (best_available_path(instance, node, assignment) != assignment[node]) {
      return false;
    }
  }
  return true;
}

namespace {

void enumerate(const SppInstance& instance, AsId node, Assignment& current,
               std::vector<Assignment>& found, std::size_t limit) {
  if (found.size() >= limit) {
    return;
  }
  if (node == instance.num_nodes()) {
    if (is_stable(instance, current)) {
      found.push_back(current);
    }
    return;
  }
  if (node == instance.origin()) {
    current[node] = Path{node};
    enumerate(instance, node + 1, current, found, limit);
    return;
  }
  // Try the empty path and every permitted path.
  current[node] = {};
  enumerate(instance, node + 1, current, found, limit);
  for (const Path& p : instance.permitted(node)) {
    current[node] = p;
    enumerate(instance, node + 1, current, found, limit);
  }
  current[node] = {};
}

}  // namespace

std::vector<Assignment> find_stable_solutions(const SppInstance& instance,
                                              std::size_t limit) {
  std::vector<Assignment> found;
  Assignment current(instance.num_nodes());
  enumerate(instance, 0, current, found, limit);
  return found;
}

}  // namespace panagree::bgp
