// Quickstart: the paper's running example end to end in ~80 lines.
//
// Builds the Fig. 1 topology, attaches an economy, forms the
// mutuality-based agreement a = [D(^{A}); E(^{B}, ->{F})] (Eq. 6), evaluates
// both parties' agreement utility for a concrete traffic shift (Eq. 3/7),
// and settles the difference with the Nash-bargaining cash transfer
// (Eq. 10-11).
#include <iostream>

#include "panagree/core/agreements/agreement.hpp"
#include "panagree/core/agreements/utility.hpp"
#include "panagree/core/bargain/cash.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/topology/examples.hpp"

using namespace panagree;

int main() {
  // 1. The AS topology of Fig. 1.
  const topology::Fig1 t = topology::make_fig1();
  const topology::Graph& g = t.graph;
  std::cout << "Topology: " << g.num_ases() << " ASes, " << g.num_links()
            << " links\n";

  // 2. An economy: per-unit transit prices and internal costs (§III-A).
  econ::Economy economy(g);
  economy.set_link_pricing(t.A, t.D, econ::PricingFunction::per_unit(2.0));
  economy.set_link_pricing(t.B, t.E, econ::PricingFunction::per_unit(2.0));
  economy.set_link_pricing(t.D, t.H, econ::PricingFunction::per_unit(2.6));
  economy.set_link_pricing(t.E, t.I, econ::PricingFunction::per_unit(2.6));
  economy.set_internal_cost(t.D, econ::InternalCostFunction::linear(0.05));
  economy.set_internal_cost(t.E, econ::InternalCostFunction::linear(0.05));

  // 3. Today's traffic: H and I reach the far side via their providers.
  econ::TrafficAllocation base;
  base.add_path_flow(std::vector<topology::AsId>{t.H, t.D, t.A, t.B}, 4.0);
  base.add_path_flow(std::vector<topology::AsId>{t.I, t.E, t.B, t.A}, 4.0);

  // 4. The paper's mutuality-based agreement (Eq. 6).
  agreements::Agreement a;
  a.grant_x.grantor = t.D;
  a.grant_x.providers = {t.A};
  a.grant_y.grantor = t.E;
  a.grant_y.providers = {t.B};
  a.grant_y.peers = {t.F};
  a.validate(g);
  std::cout << "Agreement a = " << a.to_string(g)
            << (a.violates_grc() ? "  (GRC-violating: needs a PAN)" : "")
            << "\n";

  // 5. The agreement's traffic effect: both sides reroute their customer
  //    traffic over the partner and attract some new demand (Eq. 7c).
  agreements::TrafficShift shift;
  shift.reroutes.push_back(agreements::Reroute{
      {t.H, t.D, t.A, t.B}, {t.H, t.D, t.E, t.B}, 4.0});
  shift.reroutes.push_back(agreements::Reroute{
      {t.I, t.E, t.B, t.A}, {t.I, t.E, t.D, t.A}, 4.0});
  shift.new_demands.push_back(
      agreements::NewDemand{{t.H, t.D, t.E, t.B}, 3.0});
  shift.new_demands.push_back(
      agreements::NewDemand{{t.I, t.E, t.D, t.A}, 2.0});

  // 6. Agreement utilities u_D(a), u_E(a) (Eq. 3).
  const agreements::AgreementEvaluator evaluator(economy, base);
  const double u_d = evaluator.utility_change(t.D, shift);
  const double u_e = evaluator.utility_change(t.E, shift);
  std::cout << "u_D(a) = " << u_d << ", u_E(a) = " << u_e << "\n";

  // 7. Cash compensation (Eq. 11): split the surplus equally.
  if (const auto deal = bargain::negotiate_cash(u_d, u_e)) {
    std::cout << "Cash deal: Pi_{D->E} = " << deal->transfer_x_to_y
              << "  =>  u_D = " << deal->u_x_after
              << ", u_E = " << deal->u_y_after << "\n";
  } else {
    std::cout << "No viable deal (joint utility negative).\n";
  }
  return 0;
}
