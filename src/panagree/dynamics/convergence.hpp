// Routing dynamics: iterative next-hop propagation to fixpoint.
//
// Every other analysis in the repo is steady-state - it enumerates the
// paths a *converged* control plane could use. This engine models the
// convergence itself: per destination, the synchronous best-route
// iteration every AS would run under Gao-Rexford preferences (customer
// routes over peer routes over provider routes, then shorter AS paths)
// and valley-free export (customer-learned routes go to everyone, the
// rest only to customers), repeated until no route changes. The shape is
// the classic ~200-line iterative next-hop fixpoint loop of BGP
// simulators, lifted onto the CSR topology views of this repo.
//
// Three properties the rest of the engine leans on:
//
//   * *Determinism.* Rounds are synchronous (Jacobi: round t reads only
//     round t-1 state) and ties break on the lowest next-hop AS id, so
//     the fixpoint - and the round count reaching it - is a pure function
//     of the topology view. Thread counts, iteration order, and prior
//     calls never change a result (dynamics_test locks this in).
//
//   * *View genericity.* converge() is templated over the topology-view
//     protocol (num_ases / for_each_entry yielding Entry-shaped values),
//     so it runs unchanged on a CompiledTopology snapshot or on a
//     scenario::Overlay carrying link-down / link-add deltas - failure
//     what-ifs reuse the whole machinery with zero copies.
//
//   * *Fixpoint sanity.* At a fixpoint the next-hop graph toward the
//     destination is loop-free (route lengths strictly decrease along
//     next hops), and under the Gao-Rexford hierarchy (no
//     provider-customer cycles) the synchronous iteration provably
//     reaches one. Topologies violating the hierarchy (possible in raw
//     CAIDA data) are caught by the round cap and reported as
//     `converged = false` instead of hanging.
//
// Churn - the operational cost of a deployment or failure - is the
// comparison of two converged tables: next-hop changes, routes lost,
// routes gained. compare_routing() folds it over a destination sample.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "panagree/obs/metrics.hpp"
#include "panagree/obs/trace.hpp"
#include "panagree/paths/parallel.hpp"
#include "panagree/topology/compiled.hpp"
#include "panagree/util/error.hpp"

namespace panagree::dynamics {

using topology::AsId;
using topology::NeighborRole;

namespace detail {

/// Convergence metrics: round counts are *the* dynamics headline, so they
/// are always on (one histogram record per converge() call, not per
/// round).
struct DynamicsMetrics {
  obs::Counter& destinations;
  obs::Counter& round_cap_hits;
  obs::Histogram& rounds;
  obs::Histogram& converge_ns;
  obs::Counter& churn_next_hops;
  obs::Counter& routes_lost;
  obs::Counter& routes_gained;
};

[[nodiscard]] inline DynamicsMetrics& dynamics_metrics() {
  obs::Registry& reg = obs::Registry::global();
  static DynamicsMetrics metrics{
      reg.counter("dynamics.destinations"),
      reg.counter("dynamics.round_cap_hits"),
      reg.histogram("dynamics.rounds"),
      reg.histogram("dynamics.converge_ns"),
      reg.counter("dynamics.churn_next_hops"),
      reg.counter("dynamics.routes_lost"),
      reg.counter("dynamics.routes_gained"),
  };
  return metrics;
}

[[nodiscard]] inline std::uint64_t dynamics_clock_ns() noexcept {
  if constexpr (obs::enabled()) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  } else {
    return 0;
  }
}

}  // namespace detail

/// Gao-Rexford preference class of a route, by the relationship to the
/// neighbor it was learned from. Higher is better; kSelf marks the
/// destination's own (exported-to-everyone) route.
enum class RouteClass : std::uint8_t {
  kNone = 0,      ///< no route
  kProvider = 1,  ///< learned from a provider (worst)
  kPeer = 2,      ///< learned from a peer
  kCustomer = 3,  ///< learned from a customer (best)
  kSelf = 4,      ///< the destination itself
};

/// One AS's best route toward the converged destination.
struct Route {
  AsId next_hop = topology::kInvalidAs;
  /// AS hops to the destination (0 for the destination itself).
  std::uint32_t length = 0;
  RouteClass cls = RouteClass::kNone;

  [[nodiscard]] bool reachable() const { return cls != RouteClass::kNone; }

  friend bool operator==(const Route&, const Route&) = default;
};

struct ConvergenceOptions {
  /// Hard round cap; 0 = 2 * num_ases + 16, far above the Gao-Rexford
  /// bound (route lengths never exceed the AS count). Hitting the cap
  /// means the topology admits a routing oscillation (a provider cycle);
  /// the result is returned as-is with converged = false.
  std::size_t max_rounds = 0;
};

/// The converged routing table of one destination.
struct ConvergenceResult {
  /// routes[u] is u's best route toward the destination (index == AsId).
  std::vector<Route> routes;
  /// Synchronous rounds in which at least one route changed - 0 when the
  /// initial state is already stable (an unreachable island destination).
  std::size_t rounds = 0;
  /// ASes with a route, the destination included.
  std::size_t reachable = 0;
  bool converged = true;

  friend bool operator==(const ConvergenceResult&,
                         const ConvergenceResult&) = default;
};

/// Reusable per-thread working state of converge(): the two route tables
/// of the Jacobi iteration survive across calls, so a fan-out over many
/// destinations allocates twice per thread instead of twice per
/// destination.
class ConvergenceEngine {
 public:
  ConvergenceEngine() = default;

  /// Iterates the synchronous best-route rounds for `dest` over any
  /// topology view exposing num_ases() and for_each_entry(as, fn)
  /// yielding CompiledTopology::Entry-shaped values (the snapshot itself
  /// or a scenario::Overlay). Pure: the result depends only on the view
  /// and `dest`, never on engine history.
  template <typename Topo>
  [[nodiscard]] ConvergenceResult converge(
      const Topo& topo, AsId dest, const ConvergenceOptions& options = {}) {
    util::require(dest < topo.num_ases(),
                  "ConvergenceEngine: destination out of range");
    const obs::TraceSpan span("dynamics.converge");
    const std::uint64_t start = detail::dynamics_clock_ns();
    const std::size_t n = topo.num_ases();
    const std::size_t cap =
        options.max_rounds != 0 ? options.max_rounds : 2 * n + 16;

    prev_.assign(n, Route{});
    cur_.assign(n, Route{});
    prev_[dest] = Route{dest, 0, RouteClass::kSelf};
    cur_[dest] = prev_[dest];

    ConvergenceResult result;
    bool changed = true;
    while (changed && result.rounds < cap) {
      changed = false;
      for (AsId u = 0; u < static_cast<AsId>(n); ++u) {
        if (u == dest) {
          continue;
        }
        Route best;
        topo.for_each_entry(u, [&](const auto& entry) {
          const Route& offered = prev_[entry.neighbor];
          if (!offered.reachable()) {
            return;
          }
          // Split horizon: a route is never offered back to its own next
          // hop (the distance-vector analog of BGP's AS-path loop check;
          // fixpoints are identical, transients shorter).
          if (offered.next_hop == u) {
            return;
          }
          // Valley-free export: the neighbor advertises customer-learned
          // (and its own) routes to everyone, everything else only to its
          // customers - and u is the neighbor's customer exactly when the
          // neighbor is u's provider.
          const bool exported = offered.cls == RouteClass::kCustomer ||
                                offered.cls == RouteClass::kSelf ||
                                entry.role == NeighborRole::kProvider;
          if (!exported) {
            return;
          }
          const Route candidate{entry.neighbor, offered.length + 1,
                                class_of(entry.role)};
          if (better(candidate, best)) {
            best = candidate;
          }
        });
        cur_[u] = best;
        changed = changed || !(best == prev_[u]);
      }
      if (changed) {
        ++result.rounds;
        prev_.swap(cur_);
      }
    }
    result.converged = !changed;
    result.routes = prev_;
    for (const Route& route : result.routes) {
      if (route.reachable()) {
        ++result.reachable;
      }
    }
    if constexpr (obs::enabled()) {
      detail::DynamicsMetrics& metrics = detail::dynamics_metrics();
      metrics.destinations.add(1);
      metrics.rounds.record(result.rounds);
      metrics.converge_ns.record(detail::dynamics_clock_ns() - start);
      if (!result.converged) {
        metrics.round_cap_hits.add(1);
      }
    }
    return result;
  }

 private:
  /// Preference class of a route learned from a neighbor with `role` (the
  /// role of the neighbor as seen from the selecting AS).
  [[nodiscard]] static RouteClass class_of(NeighborRole role) {
    switch (role) {
      case NeighborRole::kCustomer:
        return RouteClass::kCustomer;
      case NeighborRole::kPeer:
        return RouteClass::kPeer;
      case NeighborRole::kProvider:
        break;
    }
    return RouteClass::kProvider;
  }

  /// Strict preference order: class, then length, then lowest next-hop id
  /// (the deterministic tie-break that makes the fixpoint a pure function
  /// of the topology).
  [[nodiscard]] static bool better(const Route& a, const Route& b) {
    if (a.cls != b.cls) {
      return static_cast<std::uint8_t>(a.cls) >
             static_cast<std::uint8_t>(b.cls);
    }
    if (a.length != b.length) {
      return a.length < b.length;
    }
    return a.next_hop < b.next_hop;
  }

  std::vector<Route> prev_;
  std::vector<Route> cur_;
};

/// One-shot converge() with throwaway working state.
template <typename Topo>
[[nodiscard]] ConvergenceResult converge(const Topo& topo, AsId dest,
                                         const ConvergenceOptions& options =
                                             {}) {
  ConvergenceEngine engine;
  return engine.converge(topo, dest, options);
}

/// Converged tables of a destination sample - the unit failure what-ifs
/// and deployment churn reports compare.
struct RoutingSnapshot {
  std::vector<AsId> dests;
  /// results[i] is the converged table of dests[i].
  std::vector<ConvergenceResult> results;
  std::size_t max_rounds = 0;
  std::size_t total_rounds = 0;
  /// (dest, AS) pairs with a route, destinations included.
  std::size_t reachable_pairs = 0;
  bool all_converged = true;
};

/// Converges every destination in `dests` (fan-out over the parallel
/// driver; results in dests order, byte-identical at any thread count).
template <typename Topo>
[[nodiscard]] RoutingSnapshot converge_all(const Topo& topo,
                                           std::vector<AsId> dests,
                                           std::size_t threads = 0,
                                           const ConvergenceOptions& options =
                                               {}) {
  RoutingSnapshot snapshot;
  snapshot.results = paths::map_indices(
      dests.size(), threads, [&](std::size_t i) {
        thread_local ConvergenceEngine engine;
        return engine.converge(topo, dests[i], options);
      });
  snapshot.dests = std::move(dests);
  for (const ConvergenceResult& result : snapshot.results) {
    snapshot.max_rounds = std::max(snapshot.max_rounds, result.rounds);
    snapshot.total_rounds += result.rounds;
    snapshot.reachable_pairs += result.reachable;
    snapshot.all_converged = snapshot.all_converged && result.converged;
  }
  return snapshot;
}

/// Path churn between two converged tables of the *same* destination:
/// ASes whose next hop moved (both sides reachable), routes lost, routes
/// gained. Also the per-snapshot aggregate via the RoutingSnapshot
/// overload, which records the obs churn counters.
struct ChurnReport {
  std::size_t changed_next_hops = 0;
  std::size_t routes_lost = 0;
  std::size_t routes_gained = 0;

  ChurnReport& operator+=(const ChurnReport& other) {
    changed_next_hops += other.changed_next_hops;
    routes_lost += other.routes_lost;
    routes_gained += other.routes_gained;
    return *this;
  }

  friend bool operator==(const ChurnReport&, const ChurnReport&) = default;
};

[[nodiscard]] ChurnReport churn(const ConvergenceResult& before,
                                const ConvergenceResult& after);

/// Summed churn over a destination sample. Both snapshots must cover the
/// same dests in the same order (they came from converge_all over the two
/// compared views).
[[nodiscard]] ChurnReport churn(const RoutingSnapshot& before,
                                const RoutingSnapshot& after);

}  // namespace panagree::dynamics
