#include "panagree/core/bargain/cash.hpp"

namespace panagree::bargain {

std::optional<CashDeal> negotiate_cash(double u_x, double u_y) {
  const double surplus = u_x + u_y;
  if (surplus < 0.0) {
    return std::nullopt;
  }
  CashDeal deal;
  deal.transfer_x_to_y = u_x - surplus / 2.0;  // Eq. (11)
  deal.u_x_after = u_x - deal.transfer_x_to_y;
  deal.u_y_after = u_y + deal.transfer_x_to_y;
  return deal;
}

}  // namespace panagree::bargain
