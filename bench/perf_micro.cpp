// Micro-benchmarks (google-benchmark) for the hot paths of the library:
// topology generation, beaconing, diversity counting, PAN forwarding, the
// BOSCO mechanism pipeline, and the scenario sweep engine.
//
// The *_GraphBaseline benchmarks preserve the pre-CSR implementations
// (per-hop Graph::neighbors() allocation + unordered_map role lookups)
// so the CompiledTopology speedup is measured, not asserted: compare
// BM_RoleLookup_GraphBaseline vs BM_RoleLookup_Compiled and
// BM_Length3*_GraphBaseline vs BM_Length3*_Csr. Likewise
// BM_ScenarioSweep_FullRecompute (copy graph + recompile + recompute per
// scenario) is the preserved baseline for BM_ScenarioSweep_Incremental.
//
// Results are also written to BENCH_perf_micro.json (see main below).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "panagree/bgp/analysis.hpp"
#include "panagree/core/bosco/efficiency.hpp"
#include "panagree/core/bosco/equilibrium.hpp"
#include "panagree/diversity/length3.hpp"
#include "panagree/dynamics/convergence.hpp"
#include "exhaustive_rank.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/obs/metrics.hpp"
#include "panagree/obs/slowlog.hpp"
#include "panagree/scenario/optimizer.hpp"
#include "panagree/diversity/report.hpp"
#include "panagree/pan/beaconing.hpp"
#include "panagree/pan/forwarding.hpp"
#include "panagree/paths/parallel.hpp"
#include "panagree/paths/role_filter.hpp"
#include "panagree/scenario/failure.hpp"
#include "panagree/scenario/metrics.hpp"
#include "panagree/scenario/sweep.hpp"
#include "panagree/serve/query_engine.hpp"
#include "panagree/serve/shard_router.hpp"
#include "panagree/sim/engine.hpp"
#include "panagree/storage/snapshot.hpp"
#include "panagree/topology/capacity.hpp"
#include "panagree/topology/compiled.hpp"
#include "panagree/topology/examples.hpp"
#include "panagree/topology/generator.hpp"
#include "panagree/util/rng.hpp"

namespace {

using namespace panagree;

const topology::GeneratedTopology& cached_topology() {
  static const topology::GeneratedTopology topo = [] {
    topology::GeneratorParams params;
    params.num_ases = 3000;
    params.tier1_count = 8;
    params.seed = 99;
    return topology::generate_internet(params);
  }();
  return topo;
}

const topology::CompiledTopology& cached_compiled() {
  static const topology::CompiledTopology compiled(cached_topology().graph);
  return compiled;
}

void BM_GenerateInternet(benchmark::State& state) {
  topology::GeneratorParams params;
  params.num_ases = static_cast<std::size_t>(state.range(0));
  params.tier1_count = 6;
  params.seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::generate_internet(params));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateInternet)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_Beaconing(benchmark::State& state) {
  const auto& topo = cached_topology();
  for (auto _ : state) {
    pan::BeaconService beacons(topo.graph);
    beacons.run();
    benchmark::DoNotOptimize(beacons.up_segments(topo.tier3.front()));
  }
}
BENCHMARK(BM_Beaconing)->Unit(benchmark::kMillisecond);

void BM_Length3Count(benchmark::State& state) {
  const auto& topo = cached_topology();
  const diversity::Length3Analyzer analyzer(topo.graph);
  topology::AsId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.count(src, {1, 5, 50}));
    src = (src + 17) % static_cast<topology::AsId>(topo.graph.num_ases());
  }
}
BENCHMARK(BM_Length3Count);

// ------------------------------------------------- CSR before/after pairs

/// Mixed linked/unlinked AS pairs for the role-lookup benchmarks.
std::vector<std::pair<topology::AsId, topology::AsId>> lookup_pairs() {
  const auto& g = cached_topology().graph;
  util::Rng rng(4242);
  std::vector<std::pair<topology::AsId, topology::AsId>> pairs;
  pairs.reserve(2048);
  for (int i = 0; i < 1024; ++i) {
    const auto& link = g.link(rng.uniform_index(g.num_links()));
    pairs.emplace_back(link.a, link.b);
    pairs.emplace_back(
        static_cast<topology::AsId>(rng.uniform_index(g.num_ases())),
        static_cast<topology::AsId>(rng.uniform_index(g.num_ases())));
  }
  return pairs;
}

void BM_RoleLookup_GraphBaseline(benchmark::State& state) {
  const auto& g = cached_topology().graph;
  const auto pairs = lookup_pairs();
  for (auto _ : state) {
    for (const auto& [x, y] : pairs) {
      benchmark::DoNotOptimize(g.role_of(x, y));
    }
  }
  state.SetItemsProcessed(state.iterations() * pairs.size());
}
BENCHMARK(BM_RoleLookup_GraphBaseline);

void BM_RoleLookup_Compiled(benchmark::State& state) {
  const auto& c = cached_compiled();
  const auto pairs = lookup_pairs();
  for (auto _ : state) {
    for (const auto& [x, y] : pairs) {
      benchmark::DoNotOptimize(c.role_of(x, y));
    }
  }
  state.SetItemsProcessed(state.iterations() * pairs.size());
}
BENCHMARK(BM_RoleLookup_Compiled);

/// The pre-CSR length-3 GRC enumeration (Graph::neighbors() allocates per
/// mid AS), preserved as the speedup baseline.
std::size_t legacy_grc_paths(const topology::Graph& g, topology::AsId src) {
  std::size_t count = 0;
  for (const topology::AsId m : g.providers(src)) {
    for (const topology::AsId d : g.neighbors(m)) {
      count += d != src;
    }
  }
  for (const topology::AsId m : g.peers(src)) {
    for (const topology::AsId d : g.customers(m)) {
      count += d != src;
    }
  }
  for (const topology::AsId m : g.customers(src)) {
    for (const topology::AsId d : g.customers(m)) {
      count += d != src;
    }
  }
  return count;
}

/// The pre-CSR MA enumeration (unordered_map role lookup per candidate),
/// preserved as the speedup baseline.
std::size_t legacy_ma_paths(const topology::Graph& g, topology::AsId src) {
  std::vector<std::pair<topology::AsId, topology::AsId>> out;
  const auto excluded = [&](topology::AsId z) {
    return z == src ||
           g.role_of(src, z) == topology::NeighborRole::kCustomer;
  };
  for (const topology::AsId p : g.peers(src)) {
    for (const topology::AsId z : g.providers(p)) {
      if (!excluded(z)) {
        out.emplace_back(p, z);
      }
    }
    for (const topology::AsId z : g.peers(p)) {
      if (!excluded(z)) {
        out.emplace_back(p, z);
      }
    }
  }
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(out.size() * 2);
  for (const auto& [m, d] : out) {
    seen.insert((static_cast<std::uint64_t>(m) << 32) | d);
  }
  const auto add_indirect = [&](topology::AsId p) {
    for (const topology::AsId q : g.peers(p)) {
      if (q == src ||
          g.role_of(q, src) == topology::NeighborRole::kCustomer) {
        continue;
      }
      if (seen.insert((static_cast<std::uint64_t>(p) << 32) | q).second) {
        out.emplace_back(p, q);
      }
    }
  };
  for (const topology::AsId p : g.customers(src)) {
    add_indirect(p);
  }
  for (const topology::AsId p : g.peers(src)) {
    add_indirect(p);
  }
  return out.size();
}

void BM_Length3Enumeration_GraphBaseline(benchmark::State& state) {
  const auto& g = cached_topology().graph;
  topology::AsId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacy_grc_paths(g, src) +
                             legacy_ma_paths(g, src));
    src = (src + 17) % static_cast<topology::AsId>(g.num_ases());
  }
}
BENCHMARK(BM_Length3Enumeration_GraphBaseline);

void BM_Length3Enumeration_Csr(benchmark::State& state) {
  const diversity::Length3Analyzer analyzer(cached_topology().graph);
  const auto& g = cached_topology().graph;
  topology::AsId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.grc_paths(src).size() +
                             analyzer.ma_paths(src).size());
    src = (src + 17) % static_cast<topology::AsId>(g.num_ases());
  }
}
BENCHMARK(BM_Length3Enumeration_Csr);

void BM_CompileTopology(benchmark::State& state) {
  const auto& g = cached_topology().graph;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::CompiledTopology(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_links());
}
BENCHMARK(BM_CompileTopology)->Unit(benchmark::kMillisecond);

void BM_DiversityReport_Threads(benchmark::State& state) {
  const auto& topo = cached_topology();
  diversity::DiversityParams params;
  params.sample_sources = 200;
  params.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        diversity::analyze_path_diversity(topo.graph, params));
  }
}
BENCHMARK(BM_DiversityReport_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_SipHash(benchmark::State& state) {
  const pan::MacKey key{1, 2};
  std::uint64_t word = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pan::siphash24_words(key, {word, word + 1, 3}));
    ++word;
  }
}
BENCHMARK(BM_SipHash);

void BM_IssueAndForward(benchmark::State& state) {
  const auto t = topology::make_fig1();
  const pan::KeyStore keys(1, t.graph.num_ases());
  const pan::ForwardingEngine engine(t.graph, keys);
  const std::vector<topology::AsId> path{t.H, t.D, t.A, t.B, t.E, t.I};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.forward(pan::issue_path(keys, path)));
  }
}
BENCHMARK(BM_IssueAndForward);

void BM_EventEngine(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    int counter = 0;
    for (int i = 0; i < 10000; ++i) {
      engine.schedule(static_cast<double>((i * 7919) % 1000),
                      [&counter] { ++counter; });
    }
    engine.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventEngine)->Unit(benchmark::kMillisecond);

void BM_ValleyFreeEnumeration(benchmark::State& state) {
  const auto t = topology::make_fig1();
  // Compile once outside the loop: the Graph overload is a convenience
  // adapter that would rebuild the snapshot per call.
  const topology::CompiledTopology compiled(t.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bgp::enumerate_valley_free_paths(compiled, t.H, t.I, 6));
  }
}
BENCHMARK(BM_ValleyFreeEnumeration);

void BM_BoscoBestResponse(benchmark::State& state) {
  const bosco::UniformDistribution dist(-1.0, 1.0);
  util::Rng rng(1);
  const auto w = static_cast<std::size_t>(state.range(0));
  const auto vx = bosco::ChoiceSet::random(dist, w, rng);
  const auto vy = bosco::ChoiceSet::random(dist, w, rng);
  const auto sy = bosco::Strategy::quantizer(vy);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bosco::best_response_to(vx, vy, sy, dist));
  }
}
BENCHMARK(BM_BoscoBestResponse)->Arg(20)->Arg(60);

void BM_BoscoEquilibrium(benchmark::State& state) {
  const bosco::UniformDistribution dist(-1.0, 1.0);
  util::Rng rng(2);
  const auto w = static_cast<std::size_t>(state.range(0));
  const auto vx = bosco::ChoiceSet::random(dist, w, rng);
  const auto vy = bosco::ChoiceSet::random(dist, w, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bosco::find_equilibrium(vx, vy, dist, dist));
  }
}
BENCHMARK(BM_BoscoEquilibrium)->Arg(20)->Arg(60);

// ---------------------------------------- scenario sweep before/after pair
//
// The acceptance workload of the scenario engine: 100 single-MA-deployment
// deltas on the 3000-AS topology, 500 sampled sources, identical per-source
// work (materialized §VI length-3 path sets) on both sides. The baseline
// recompiles and recomputes everything per scenario; the incremental side
// pays one prime, then per scenario only the sources inside the
// deployment's invalidation ball. Results are byte-identical (asserted by
// scenario_test, summed into the same checksum here).

const std::vector<topology::AsId>& sweep_sources() {
  static const std::vector<topology::AsId> sources =
      diversity::sample_sources(cached_topology().graph, 500, 7);
  return sources;
}

const std::vector<scenario::Delta>& sweep_deltas() {
  static const std::vector<scenario::Delta> deltas =
      scenario::candidate_peering_deltas(cached_compiled(), 100, 4242);
  return deltas;
}

std::size_t path_set_checksum(const scenario::SourcePathSet& sets) {
  return sets.grc().size() + 3 * sets.ma().size();
}

void BM_ScenarioSweep_FullRecompute(benchmark::State& state) {
  const topology::Graph& base = cached_topology().graph;
  const auto& sources = sweep_sources();
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::size_t checksum = 0;
  for (auto _ : state) {
    checksum = 0;
    for (const scenario::Delta& delta : sweep_deltas()) {
      topology::Graph mutated = base;
      for (const scenario::LinkChange& change : delta.add) {
        if (change.type == topology::LinkType::kPeering) {
          mutated.add_peering(change.a, change.b);
        } else {
          mutated.add_provider_customer(change.a, change.b);
        }
      }
      const topology::CompiledTopology recompiled(mutated);
      const scenario::Overlay none(recompiled);
      const auto results = paths::map_sources(
          sources, threads, [&](topology::AsId src) {
            return scenario::enumerate_length3(none, src);
          });
      for (const scenario::SourcePathSet& sets : results) {
        checksum += path_set_checksum(sets);
      }
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * sweep_deltas().size());
  state.counters["checksum"] = static_cast<double>(checksum);
}
BENCHMARK(BM_ScenarioSweep_FullRecompute)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_ScenarioSweep_Incremental(benchmark::State& state) {
  const auto& sources = sweep_sources();
  scenario::SweepConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  config.dirty_radius = scenario::kLength3DirtyRadius;
  const auto enumerate = [](const scenario::Overlay& overlay,
                            topology::AsId src) {
    return scenario::enumerate_length3(overlay, src);
  };
  std::size_t checksum = 0;
  double recomputed = 0.0;
  for (auto _ : state) {
    checksum = 0;
    recomputed = 0.0;
    // Prime is *inside* the timing: the comparison is end-to-end cost of
    // answering 100 what-ifs, not just the marginal scenario.
    scenario::SweepRunner<scenario::SourcePathSet> runner(cached_compiled(),
                                                          sources, config);
    runner.prime(enumerate);
    for (const scenario::Delta& delta : sweep_deltas()) {
      scenario::SweepStats stats;
      runner.evaluate_visit(
          delta, enumerate,
          [&](std::size_t, const scenario::SourcePathSet& sets) {
            checksum += path_set_checksum(sets);
          },
          &stats);
      recomputed += static_cast<double>(stats.recomputed_sources);
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * sweep_deltas().size());
  state.counters["checksum"] = static_cast<double>(checksum);
  state.counters["recomputed_sources_per_scenario"] =
      recomputed / static_cast<double>(sweep_deltas().size());
}
BENCHMARK(BM_ScenarioSweep_Incremental)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------- convergence dynamics pair
//
// BM_Convergence_Fixpoint is the raw engine: synchronous best-route
// rounds to fixpoint for a fixed destination sample on the 3000-AS
// topology. BM_Convergence_FailureSweep is the --failures workload unit:
// one candidate deployment re-evaluated under 8 single-link failure
// sets through a primed incremental sweep (prime outside the timing
// loop; the per-set cost is the invalidation ball, not the topology).

void BM_Convergence_Fixpoint(benchmark::State& state) {
  const auto& compiled = cached_compiled();
  const std::vector<topology::AsId> dests(sweep_sources().begin(),
                                          sweep_sources().begin() + 4);
  dynamics::ConvergenceEngine engine;
  std::size_t checksum = 0;
  for (auto _ : state) {
    checksum = 0;
    for (const topology::AsId dest : dests) {
      const dynamics::ConvergenceResult result =
          engine.converge(compiled, dest);
      checksum += result.rounds + result.reachable;
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * dests.size());
  state.counters["checksum"] = static_cast<double>(checksum);
}
BENCHMARK(BM_Convergence_Fixpoint)->Unit(benchmark::kMillisecond);

void BM_Convergence_FailureSweep(benchmark::State& state) {
  const auto& compiled = cached_compiled();
  scenario::SweepConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  config.dirty_radius = scenario::kLength3DirtyRadius;
  const auto enumerate = [](const scenario::Overlay& overlay,
                            topology::AsId src) {
    return scenario::enumerate_length3(overlay, src);
  };
  scenario::SweepRunner<scenario::SourcePathSet> runner(compiled,
                                                        sweep_sources(),
                                                        config);
  runner.prime(enumerate);
  const scenario::FailureSets failures =
      scenario::failure_sets(compiled, 1, 8, 1234);
  const scenario::Delta& candidate = sweep_deltas().front();
  std::size_t checksum = 0;
  for (auto _ : state) {
    const scenario::FailureDiversity fd =
        scenario::failure_diversity(runner, candidate, failures.sets);
    checksum = fd.min.total_paths() + fd.worst_set;
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * failures.sets.size());
  state.counters["checksum"] = static_cast<double>(checksum);
}
BENCHMARK(BM_Convergence_FailureSweep)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------ deployment optimizer pair
//
// The acceptance workload of the optimizer: pick a 4-step deployment
// program out of 64 candidate peerings on the 3000-AS topology, 500
// sampled sources. The exhaustive baseline is the pre-optimizer way to
// rank one round: every candidate pays a full per-source enumeration
// (no invalidation-ball caching). The greedy side runs scenario::Optimizer
// with the shared dirty-set cache: one prime, then per candidate per
// round only the sources inside its invalidation ball - and cached
// candidate slices survive rounds whose committed step lands elsewhere.
// Both report the round-1 winner as a counter; the tentpole property
// (optimizer output byte-identical to full recompute) makes them agree.

const std::vector<scenario::Delta>& optimizer_candidates() {
  static const std::vector<scenario::Delta> candidates =
      scenario::candidate_peering_deltas(cached_compiled(), 64, 333);
  return candidates;
}

const econ::Economy& cached_economy() {
  static const econ::Economy economy =
      econ::make_default_economy(cached_topology().graph);
  return economy;
}

void BM_Optimizer_Exhaustive(benchmark::State& state) {
  const auto& compiled = cached_compiled();
  const auto& sources = sweep_sources();
  const auto& candidates = optimizer_candidates();
  const scenario::MetricsAggregator aggregator(
      compiled, &cached_topology().world, &cached_economy());
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::size_t top_candidate = 0;
  for (auto _ : state) {
    const benchcfg::ExhaustiveRank ranked = benchcfg::exhaustive_rank(
        compiled, sources, candidates, aggregator, threads);
    top_candidate = ranked.best_candidate;
    benchmark::DoNotOptimize(top_candidate);
  }
  state.SetItemsProcessed(state.iterations() * candidates.size());
  state.counters["top_candidate"] = static_cast<double>(top_candidate);
}
BENCHMARK(BM_Optimizer_Exhaustive)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_Optimizer_Greedy(benchmark::State& state) {
  const auto& compiled = cached_compiled();
  const auto& candidates = optimizer_candidates();
  const scenario::MetricsAggregator aggregator(
      compiled, &cached_topology().world, &cached_economy());
  scenario::OptimizerConfig config;
  config.max_steps = 4;
  config.sweep.threads = static_cast<std::size_t>(state.range(0));
  config.sweep.dirty_radius = scenario::kLength3DirtyRadius;
  const scenario::Optimizer optimizer(compiled, sweep_sources(), aggregator,
                                      config);
  scenario::OptimizerResult result;
  for (auto _ : state) {
    result = optimizer.run(candidates);
    benchmark::DoNotOptimize(result.steps.size());
  }
  state.SetItemsProcessed(state.iterations() * candidates.size());
  if (!result.steps.empty()) {
    state.counters["top_candidate"] =
        static_cast<double>(result.steps.front().candidate);
  }
  state.counters["program_steps"] =
      static_cast<double>(result.steps.size());
  state.counters["reused_evaluations"] =
      static_cast<double>(result.stats.reused_evaluations);
  state.counters["recomputed_sources"] =
      static_cast<double>(result.stats.recomputed_sources);
}
BENCHMARK(BM_Optimizer_Greedy)->Arg(4)->Unit(benchmark::kMillisecond);

// ---------------------------------------------- snapshot storage pair
//
// Startup-cost pair of the storage layer (ISSUE: >= 10x at the 3000-AS
// fixture). BM_SnapshotLoad_EmbedRecompile is the status-quo startup every
// tool paid per invocation before .pansnap files: embed the bare
// relationship graph into a synthetic world (RNG-driven PoP/centroid/
// facility assignment - the expensive part) and compile the CSR snapshot.
// BM_SnapshotLoad_Mmap maps the compiled snapshot instead: header/section
// validation, Graph/World materialization, and a zero-copy borrow of the
// CSR arrays. Only the Mmap side runs in the pinned bench suite; the
// baseline exists to keep the speedup measured, not asserted.

const std::string& snapshot_fixture() {
  static const std::string path = [] {
    const std::string file = (std::filesystem::temp_directory_path() /
                              "panagree_perf_micro.pansnap")
                                 .string();
    storage::write_snapshot(file, cached_topology(), cached_compiled());
    return file;
  }();
  return path;
}

void BM_SnapshotLoad_Mmap(benchmark::State& state) {
  const std::string& path = snapshot_fixture();
  std::size_t checksum = 0;
  for (auto _ : state) {
    const storage::MappedSnapshot snapshot =
        storage::MappedSnapshot::open(path);
    checksum = snapshot.topology().num_links() +
               snapshot.graph().num_ases() +
               snapshot.world().cities().size();
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() *
                          cached_topology().graph.num_links());
  state.counters["checksum"] = static_cast<double>(checksum);
}
BENCHMARK(BM_SnapshotLoad_Mmap)->Unit(benchmark::kMillisecond);

void BM_SnapshotLoad_EmbedRecompile(benchmark::State& state) {
  const topology::Graph& base = cached_topology().graph;
  std::size_t checksum = 0;
  for (auto _ : state) {
    // embed consumes its graph, so the copy is part of the startup cost
    // being measured (a real run would pay the caida::parse instead);
    // capacity assignment is included because the pre-snapshot startup
    // (benchcfg::make_internet) always ran it and the snapshot stores
    // capacities instead.
    topology::GeneratedTopology embedded =
        topology::embed_relationship_graph(topology::Graph(base), 99);
    topology::assign_degree_gravity_capacities(embedded.graph);
    const topology::CompiledTopology compiled(embedded.graph);
    checksum = compiled.num_links() + embedded.graph.num_ases() +
               embedded.world.cities().size();
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * base.num_links());
  state.counters["checksum"] = static_cast<double>(checksum);
}
BENCHMARK(BM_SnapshotLoad_EmbedRecompile)->Unit(benchmark::kMillisecond);

// ------------------------------------------------- serving engine trio
//
// The acceptance workload of the serving layer: a primed
// serve::QueryEngine over the 3000-AS fixture and the shared 500-source
// sample. CachedSource measures the request fast path (sampled source
// served zero-copy out of the PathPool-backed cache - this is what the
// pinned bench suite gates); ColdSource the on-the-fly enumeration of an
// unsampled source; WhatIfBatched the incremental what-if scoring of 100
// candidate deployments (memo flushed per batch, so the
// invalidation-ball evaluation is measured, not the memo hit).
// WhatIfFullRecompute is the preserved per-request baseline - every
// request re-enumerates all 500 sources over its overlay - that the
// serving layer's >= 5x acceptance ratio is measured against; like the
// other *_FullRecompute ablations it stays out of the pinned suite.

serve::QueryEngine& cached_engine() {
  // Leaked on purpose: the engine is not movable (shared mutex) and
  // static-destruction order vs the other cached fixtures is moot for a
  // bench binary.
  static serve::QueryEngine* engine = [] {
    auto* built =
        new serve::QueryEngine(cached_compiled(), &cached_topology().world,
                               &cached_economy(), sweep_sources(), {});
    built->prime();
    return built;
  }();
  return *engine;
}

void BM_QueryEngine_CachedSource(benchmark::State& state) {
  const serve::QueryEngine& engine = cached_engine();
  const auto& sources = sweep_sources();
  // 1024 requests per iteration: a single cache-served request is tens
  // of nanoseconds, below the regression checker's noise floor - the
  // batch keeps this entry comparable in the pinned suite.
  constexpr std::size_t kBatch = 1024;
  std::size_t checksum = 0;
  for (auto _ : state) {
    // Reset per iteration like the other checksum benches: the counter
    // is a cross-run correctness fingerprint, so it must not depend on
    // how many iterations the runner picks.
    checksum = 0;
    for (std::size_t r = 0; r < kBatch; ++r) {
      engine.paths(sources[r % sources.size()],
                   [&](std::span<const diversity::Length3Path> grc,
                       std::span<const diversity::Length3Path> ma) {
                     checksum += grc.size() + 3 * ma.size();
                   });
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.counters["checksum"] = static_cast<double>(checksum);
}
BENCHMARK(BM_QueryEngine_CachedSource);

void BM_QueryEngine_ColdSource(benchmark::State& state) {
  const serve::QueryEngine& engine = cached_engine();
  // The unsampled sources - every query pays a fresh enumeration.
  std::vector<topology::AsId> cold;
  {
    const auto& sources = sweep_sources();
    const std::unordered_set<topology::AsId> sampled(sources.begin(),
                                                     sources.end());
    const auto n =
        static_cast<topology::AsId>(cached_topology().graph.num_ases());
    for (topology::AsId as = 0; as < n; ++as) {
      if (!sampled.contains(as)) {
        cold.push_back(as);
      }
    }
  }
  std::size_t i = 0;
  std::size_t checksum = 0;
  for (auto _ : state) {
    // Rotating fixture: reset so the counter reports the last source's
    // fingerprint, independent of iteration count.
    checksum = 0;
    engine.paths(cold[i % cold.size()],
                 [&](std::span<const diversity::Length3Path> grc,
                     std::span<const diversity::Length3Path> ma) {
                   checksum += grc.size() + 3 * ma.size();
                 });
    ++i;
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["checksum"] = static_cast<double>(checksum);
}
BENCHMARK(BM_QueryEngine_ColdSource);

void BM_QueryEngine_WhatIfBatched(benchmark::State& state) {
  const serve::QueryEngine& engine = cached_engine();
  const auto& deltas = sweep_deltas();
  double utility_sum = 0.0;
  double recomputed = 0.0;
  for (auto _ : state) {
    engine.flush_whatif_memo();
    utility_sum = 0.0;
    recomputed = 0.0;
    for (const scenario::Delta& delta : deltas) {
      const serve::WhatIfResult result = engine.whatif(delta);
      utility_sum += result.utility;
      recomputed += static_cast<double>(result.recomputed_sources);
    }
    benchmark::DoNotOptimize(utility_sum);
  }
  state.SetItemsProcessed(state.iterations() * deltas.size());
  state.counters["utility_sum"] = utility_sum;
  state.counters["recomputed_sources_per_request"] =
      recomputed / static_cast<double>(deltas.size());
}
BENCHMARK(BM_QueryEngine_WhatIfBatched)->Unit(benchmark::kMillisecond);

void BM_QueryEngine_WhatIfFullRecompute(benchmark::State& state) {
  // The pre-serving way to answer one what-if request: enumerate every
  // sampled source over the request's overlay and aggregate from
  // scratch, serially like a request handler would. 8 requests per
  // iteration keep the ablation affordable; items normalize the rate.
  const auto& compiled = cached_compiled();
  const auto& sources = sweep_sources();
  const scenario::MetricsAggregator aggregator(
      compiled, &cached_topology().world, &cached_economy());
  const scenario::Overlay base(compiled);
  const scenario::ScenarioMetrics baseline = [&] {
    std::vector<scenario::SourcePathSet> results;
    results.reserve(sources.size());
    for (const topology::AsId src : sources) {
      results.push_back(scenario::enumerate_length3(base, src));
    }
    return aggregator.aggregate(base, sources, results);
  }();
  const auto& deltas = sweep_deltas();
  const std::size_t requests = std::min<std::size_t>(8, deltas.size());
  double utility_sum = 0.0;
  for (auto _ : state) {
    utility_sum = 0.0;
    for (std::size_t i = 0; i < requests; ++i) {
      scenario::Overlay overlay(compiled);
      overlay.apply(deltas[i]);
      std::vector<scenario::SourcePathSet> results;
      results.reserve(sources.size());
      for (const topology::AsId src : sources) {
        results.push_back(scenario::enumerate_length3(overlay, src));
      }
      const scenario::MetricsDelta marginal = scenario::subtract(
          aggregator.aggregate(overlay, sources, results), baseline);
      utility_sum += scenario::operator_utility(marginal);
    }
    benchmark::DoNotOptimize(utility_sum);
  }
  state.SetItemsProcessed(state.iterations() * requests);
  state.counters["utility_sum"] = utility_sum;
}
BENCHMARK(BM_QueryEngine_WhatIfFullRecompute)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------- sharded serving pair
//
// The sharded-serving additions. BM_Serve_ShardedWhatIf is the 4-shard
// twin of BM_QueryEngine_WhatIfBatched: the same candidate deltas scored
// through a serve::ShardRouter (per-shard whatif_slice fan-out + the
// router's in-order contribution fold), memo flushed per batch so the
// sharded evaluation is measured, not the router memo hit; utility_sum
// must match the single-engine entry (byte-identity property).
// BM_SnapshotLoad_PrimedBaseline is the mmap-only cold start: open a
// snapshot compiled with a shard plan (panagree-compile --shards),
// rebuild the per-source path caches straight off the primed-baseline
// section, and prime_restored() an engine - zero enumeration. Compare
// against the prime_ns a fresh ScenarioSweep prime pays.

serve::ShardRouter& cached_router() {
  // Leaked like cached_engine(): router and shards are not movable and
  // must outlive each other.
  static serve::ShardRouter* router = [] {
    constexpr std::size_t kShards = 4;
    const auto& sources = sweep_sources();
    const std::size_t n = sources.size();
    auto* engines = new std::vector<std::unique_ptr<serve::QueryEngine>>();
    std::vector<serve::QueryEngine*> pointers;
    for (std::size_t s = 0; s < kShards; ++s) {
      engines->push_back(std::make_unique<serve::QueryEngine>(
          cached_compiled(), &cached_topology().world, &cached_economy(),
          std::vector<topology::AsId>(
              sources.begin() + s * n / kShards,
              sources.begin() + (s + 1) * n / kShards)));
      engines->back()->prime();
      pointers.push_back(engines->back().get());
    }
    auto* built = new serve::ShardRouter(std::move(pointers));
    built->refresh_baseline();
    return built;
  }();
  return *router;
}

void BM_Serve_ShardedWhatIf(benchmark::State& state) {
  serve::ShardRouter& router = cached_router();
  const auto& deltas = sweep_deltas();
  double utility_sum = 0.0;
  double recomputed = 0.0;
  for (auto _ : state) {
    router.flush_whatif_memo();
    utility_sum = 0.0;
    recomputed = 0.0;
    for (const scenario::Delta& delta : deltas) {
      const serve::WhatIfResult result = router.whatif(delta);
      utility_sum += result.utility;
      recomputed += static_cast<double>(result.recomputed_sources);
    }
    benchmark::DoNotOptimize(utility_sum);
  }
  state.SetItemsProcessed(state.iterations() * deltas.size());
  state.counters["utility_sum"] = utility_sum;
  state.counters["recomputed_sources_per_request"] =
      recomputed / static_cast<double>(deltas.size());
}
BENCHMARK(BM_Serve_ShardedWhatIf)->Unit(benchmark::kMillisecond);

const std::string& primed_snapshot_fixture() {
  static const std::string path = [] {
    const std::string file = (std::filesystem::temp_directory_path() /
                              "panagree_perf_micro_primed.pansnap")
                                 .string();
    scenario::SweepConfig config;
    config.dirty_radius = scenario::kLength3DirtyRadius;
    scenario::SweepRunner<scenario::SourcePathSet> runner(
        cached_compiled(), sweep_sources(), config);
    runner.prime([](const scenario::Overlay& overlay, topology::AsId src) {
      return scenario::enumerate_length3(overlay, src);
    });
    storage::ShardPlanData plan;
    plan.num_shards = 4;
    plan.sources = sweep_sources();
    const std::size_t n = plan.sources.size();
    for (std::size_t s = 0; s <= plan.num_shards; ++s) {
      plan.shard_begin.push_back(
          static_cast<std::uint32_t>(s * n / plan.num_shards));
    }
    plan.path_begin.push_back(0);
    for (const scenario::SourcePathSet& set : runner.baseline()) {
      plan.grc_counts.push_back(
          static_cast<std::uint32_t>(set.grc().size()));
      plan.path_begin.push_back(
          plan.path_begin.back() +
          static_cast<std::uint32_t>(set.grc().size() + set.ma().size()));
      for (const auto paths : {set.grc(), set.ma()}) {
        for (const diversity::Length3Path& p : paths) {
          plan.path_words.push_back(p.src);
          plan.path_words.push_back(p.mid);
          plan.path_words.push_back(p.dst);
        }
      }
    }
    storage::write_snapshot(file, cached_topology(), cached_compiled(),
                            &plan);
    return file;
  }();
  return path;
}

void BM_SnapshotLoad_PrimedBaseline(benchmark::State& state) {
  const std::string& path = primed_snapshot_fixture();
  std::size_t checksum = 0;
  for (auto _ : state) {
    const storage::MappedSnapshot snapshot =
        storage::MappedSnapshot::open(path);
    const storage::ShardPlanView& plan = *snapshot.shard_plan();
    const storage::PrimedBaselineView& baseline =
        *snapshot.primed_baseline();
    serve::QueryEngine engine(
        cached_compiled(), &cached_topology().world, &cached_economy(),
        std::vector<topology::AsId>(plan.sources.begin(),
                                    plan.sources.end()));
    std::vector<scenario::SourcePathSet> restored;
    restored.reserve(plan.sources.size());
    for (std::size_t i = 0; i < plan.sources.size(); ++i) {
      scenario::SourcePathSet set;
      const std::size_t grc = baseline.grc_counts[i];
      for (std::size_t p = baseline.path_begin[i];
           p < baseline.path_begin[i + 1]; ++p) {
        const diversity::Length3Path restored_path{
            baseline.path_words[3 * p], baseline.path_words[3 * p + 1],
            baseline.path_words[3 * p + 2]};
        if (p - baseline.path_begin[i] < grc) {
          set.add_grc(restored_path);
        } else {
          set.add_ma(restored_path);
        }
      }
      restored.push_back(std::move(set));
    }
    engine.prime_restored(std::move(restored));
    checksum = engine.sources().size() + baseline.path_words.size();
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * sweep_sources().size());
  state.counters["checksum"] = static_cast<double>(checksum);
}
BENCHMARK(BM_SnapshotLoad_PrimedBaseline)->Unit(benchmark::kMillisecond);

// ------------------------------------------- parallel driver trio
//
// The scheduling-overhead workload of the work-stealing driver (ISSUE:
// BM_MapSources_Skewed >= 2x over the atomic-cursor baseline). All three
// benches run the *same* heavy-tailed item set - every 512th item spins
// ~128x longer, the shape of per-source costs on a real AS topology - so
// the measured difference is pure claim overhead: the atomic baseline
// pays one shared fetch_add per item, the work-stealing driver one CAS
// per chunk on a per-worker cache line. Skewed additionally seeds the
// partition from the known costs (what SweepRunner does with
// two_hop_cost_estimates). The checksum counter is the byte-identity
// fingerprint - all three must report the same value.

constexpr std::size_t kDriverItems = 1 << 18;

std::uint64_t driver_item_work(std::size_t i) {
  const std::size_t spins = (i % 512) == 0 ? 256 : 1;
  std::uint64_t acc = i;
  for (std::size_t s = 0; s < spins; ++s) {
    acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return acc;
}

const std::vector<std::uint64_t>& driver_item_costs() {
  static const std::vector<std::uint64_t> costs = [] {
    std::vector<std::uint64_t> c(kDriverItems, 1);
    for (std::size_t i = 0; i < kDriverItems; i += 512) {
      c[i] = 128;
    }
    return c;
  }();
  return costs;
}

std::uint64_t sum_results(const std::vector<std::uint64_t>& results) {
  std::uint64_t sum = 0;
  for (const std::uint64_t r : results) {
    sum += r;
  }
  return sum;
}

void BM_MapSources_AtomicCursor(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::uint64_t checksum = 0;
  for (auto _ : state) {
    checksum =
        sum_results(paths::map_indices_atomic(kDriverItems, threads,
                                              driver_item_work));
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * kDriverItems);
  state.counters["checksum"] = static_cast<double>(checksum);
}
BENCHMARK(BM_MapSources_AtomicCursor)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MapSources_WorkStealing(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::uint64_t checksum = 0;
  for (auto _ : state) {
    checksum = sum_results(
        paths::map_indices(kDriverItems, threads, driver_item_work));
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * kDriverItems);
  state.counters["checksum"] = static_cast<double>(checksum);
}
BENCHMARK(BM_MapSources_WorkStealing)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MapSources_Skewed(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  paths::MapOptions options;
  options.costs = driver_item_costs();
  std::uint64_t checksum = 0;
  for (auto _ : state) {
    checksum = sum_results(
        paths::map_indices(kDriverItems, threads, driver_item_work, options));
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * kDriverItems);
  state.counters["checksum"] = static_cast<double>(checksum);
}
BENCHMARK(BM_MapSources_Skewed)->Arg(4)->Unit(benchmark::kMillisecond);

// ------------------------------------------- role-filter kernel pair
//
// The admissible-role scan over the whole role lane of the 3000-AS
// fixture with the descending-phase mask (customers only - the hottest
// mask of a valley-free walk), one contiguous pass so the pair measures
// *kernel throughput* (ISSUE: >= 2x on this fixture). Per-row dispatch
// overhead on short rows is the DFS's concern and already shows up in
// the enumeration benches. Scalar is the golden reference the vector
// kernels are property-tested against (role_filter_test); Simd is
// whatever filter_roles() dispatches to on this host (the "simd"
// counter names it: 0 = scalar, 1 = sse2, 2 = avx2). The admitted
// counter is the shared correctness fingerprint.

void BM_RoleFilter_Scalar(benchmark::State& state) {
  const auto lane = cached_compiled().role_lane_array();
  std::vector<std::uint32_t> out(lane.size());
  std::size_t admitted = 0;
  for (auto _ : state) {
    admitted = paths::filter_roles_scalar(lane.data(), lane.size(),
                                          paths::kCustomerBit, out.data());
    benchmark::DoNotOptimize(admitted);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * lane.size());
  state.counters["admitted"] = static_cast<double>(admitted);
}
BENCHMARK(BM_RoleFilter_Scalar);

void BM_RoleFilter_Simd(benchmark::State& state) {
  const auto lane = cached_compiled().role_lane_array();
  std::vector<std::uint32_t> out(lane.size());
  std::size_t admitted = 0;
  for (auto _ : state) {
    admitted = paths::filter_roles(lane.data(), lane.size(),
                                   paths::kCustomerBit, out.data());
    benchmark::DoNotOptimize(admitted);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * lane.size());
  state.counters["admitted"] = static_cast<double>(admitted);
  const std::string kernel = paths::role_filter_dispatch();
  state.counters["simd"] = kernel == "avx2" ? 2.0 : kernel == "sse2" ? 1.0
                                                                     : 0.0;
}
BENCHMARK(BM_RoleFilter_Simd);

// ------------------------------------------------- obs record overhead
//
// The cost instrumented hot paths pay per record: one sharded relaxed
// fetch_add for a counter, two for a histogram. These are the numbers
// that justify leaving obs on in production builds - the regression gate
// keeps them in the single-digit-nanosecond range. Under
// PANAGREE_OBS_OFF both loops measure an empty body.

void BM_Obs_CounterHot(benchmark::State& state) {
  obs::Counter& counter =
      obs::Registry::global().counter("bench.obs_counter_hot");
  for (auto _ : state) {
    counter.increment();
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Obs_CounterHot);

void BM_Obs_HistogramRecord(benchmark::State& state) {
  obs::Histogram& histogram =
      obs::Registry::global().histogram("bench.obs_histogram_record");
  std::uint64_t value = 0;
  for (auto _ : state) {
    histogram.record(value);
    value = (value + 997) % 100000;  // spread across buckets
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Obs_HistogramRecord);

void BM_Obs_SlowlogRecord(benchmark::State& state) {
  // Worst case for the slow-query ring's writer: threshold 0 (every
  // record admitted) and strictly ascending wall times, so once the 64
  // slots fill, every record scans all slots and evicts the minimum.
  obs::SlowQueryLog log(obs::kDefaultSlowLogSlots);
  log.set_threshold_ns(0);
  obs::SlowQueryRecord rec;
  for (auto _ : state) {
    ++rec.wall_ns;
    log.record(rec);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["captured"] = static_cast<double>(log.snapshot().size());
}
BENCHMARK(BM_Obs_SlowlogRecord);

void BM_Serve_StageClockOverhead(benchmark::State& state) {
  // What one fully observed request costs on top of the work itself: the
  // cache-served fast path through handle_line with an external stage
  // clock, plus finish_request_observation (8 histogram records, a
  // slowlog offer, and - tracing disarmed here - no span recording).
  // Compare against BM_QueryEngine_CachedSource/1024 for the
  // uninstrumented floor of the same request.
  const serve::QueryEngine& engine = cached_engine();
  const auto& sources = sweep_sources();
  const std::string line_prefix = R"({"v":1,"id":1,"kind":"paths","source":)";
  std::vector<std::string> lines;
  lines.reserve(sources.size());
  for (const topology::AsId src : sources) {
    lines.push_back(line_prefix + std::to_string(src) + "}");
  }
  std::string out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    serve::RequestStages stages;
    stages.enqueue_ns = serve::stage_now_ns();
    engine.handle_line(lines[i % lines.size()], out, &stages);
    stages.send_ns = 1;  // stand in for the server's send stage
    serve::finish_request_observation(stages);
    ++i;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Serve_StageClockOverhead);

void BM_BoscoExpectedNash(benchmark::State& state) {
  const bosco::UniformDistribution dist(-1.0, 1.0);
  util::Rng rng(3);
  const auto vx = bosco::ChoiceSet::random(dist, 40, rng);
  const auto vy = bosco::ChoiceSet::random(dist, 40, rng);
  const auto eq = bosco::find_equilibrium(vx, vy, dist, dist);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bosco::expected_nash_product(vx, vy, eq.x, eq.y, dist, dist));
  }
}
BENCHMARK(BM_BoscoExpectedNash);

}  // namespace

// google-benchmark's main plus a default machine-readable results file:
// unless the caller passes --benchmark_out themselves, results land in
// BENCH_perf_micro.json (json format) alongside the console table, so the
// perf trajectory is diffable across PRs.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  // Same default output directory override the plain-main benches honor
  // (bench_json.hpp), so one env var collects every BENCH_*.json.
  std::string out_dir = ".";
  if (const char* env = std::getenv("PANAGREE_BENCH_JSON_DIR")) {
    if (*env != '\0') {
      out_dir = env;
    }
  }
  std::string out_flag =
      "--benchmark_out=" + out_dir + "/BENCH_perf_micro.json";
  std::string format_flag = "--benchmark_out_format=json";
  // Match the out flag itself, not --benchmark_out_format (a lone format
  // flag must not suppress the default results file - nor be overridden
  // by the appended default, since last flag wins).
  const bool has_out =
      std::any_of(args.begin(), args.end(), [](const char* arg) {
        return std::strncmp(arg, "--benchmark_out=", 16) == 0 ||
               std::strcmp(arg, "--benchmark_out") == 0;
      });
  const bool has_format =
      std::any_of(args.begin(), args.end(), [](const char* arg) {
        return std::strncmp(arg, "--benchmark_out_format", 22) == 0;
      });
  if (!has_out) {
    args.push_back(out_flag.data());
  }
  if (!has_out && !has_format) {
    args.push_back(format_flag.data());
  }
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(effective_argc, args.data())) {
    return 1;
  }
  // After flag handling (--help exits inside Initialize) and only for
  // real runs: a --benchmark_list_tests listing must not pay the 3000-AS
  // fixture generation just to annotate the context.
  const bool list_only =
      std::any_of(args.begin(), args.end(), [](const char* arg) {
        return std::strncmp(arg, "--benchmark_list_tests", 22) == 0;
      });
  if (!list_only) {
    benchmark::AddCustomContext(
        "topology_ases", std::to_string(cached_topology().graph.num_ases()));
    benchmark::AddCustomContext(
        "topology_links",
        std::to_string(cached_topology().graph.num_links()));
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
