// Simple Path Vector Protocol (SPVP) simulation over an SPP instance.
//
// Reproduces the §II stability arguments executably: Gao-Rexford instances
// converge under any activation sequence, DISAGREE converges but
// non-deterministically (two stable outcomes), and BAD GADGET oscillates
// forever under fair activation.
#pragma once

#include <cstddef>
#include <optional>

#include "panagree/bgp/spp.hpp"
#include "panagree/util/rng.hpp"

namespace panagree::bgp {

enum class Outcome : std::uint8_t {
  kConverged,   ///< reached a stable assignment
  kOscillated,  ///< revisited a global state (synchronous) / step budget hit
};

struct SpvpResult {
  Outcome outcome = Outcome::kOscillated;
  Assignment assignment;  ///< final (converged) or last (oscillated) state
  std::size_t steps = 0;  ///< rounds (synchronous) or activations (random)
};

/// Runs SPVP with synchronous rounds: every node simultaneously re-selects
/// its best available path. Oscillation is detected exactly by revisiting a
/// previously seen global state.
[[nodiscard]] SpvpResult run_synchronous(const SppInstance& instance,
                                         std::size_t max_rounds = 10000);

/// Runs SPVP with uniformly random single-node activations (a fair
/// activation sequence almost surely). Declares convergence when the
/// current assignment is stable; gives up after `max_steps` activations.
[[nodiscard]] SpvpResult run_random_activations(const SppInstance& instance,
                                                util::Rng& rng,
                                                std::size_t max_steps = 100000);

/// Statistical safety check: runs `trials` random-activation simulations
/// with distinct seeds and reports whether all converged and how many
/// distinct stable outcomes were reached (DISAGREE: 2; safe instances: 1).
struct SafetyReport {
  bool always_converged = true;
  std::size_t distinct_outcomes = 0;
  std::size_t trials = 0;
};

[[nodiscard]] SafetyReport check_safety(const SppInstance& instance,
                                        std::size_t trials, std::uint64_t seed,
                                        std::size_t max_steps = 100000);

}  // namespace panagree::bgp
