#include "panagree/serve/query_engine.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <tuple>
#include <utility>

#include "panagree/obs/build_info.hpp"
#include "panagree/obs/metrics.hpp"
#include "panagree/obs/trace.hpp"

namespace panagree::serve {

namespace {

// Engine-level metrics (see README "Observability"). References cached
// once; every record is a relaxed add.
struct EngineMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& paths_cache_hits = reg.counter("engine.paths_cache_hits");
  obs::Counter& paths_cold = reg.counter("engine.paths_cold");
  obs::Counter& memo_hits = reg.counter("engine.whatif_memo_hits");
  obs::Counter& memo_shared = reg.counter("engine.whatif_memo_shared");
  obs::Counter& memo_unshared = reg.counter("engine.whatif_unshared");
  obs::Counter& rebases = reg.counter("engine.rebases");
  obs::Histogram& batch = reg.histogram("engine.whatif_batch");
};

[[nodiscard]] EngineMetrics& engine_metrics() {
  static EngineMetrics metrics;
  return metrics;
}

// Per-stage latency histograms the stage clock folds every request into
// (finish_request_observation). engine_cache/engine_sweep split the
// engine stage by which machinery served it.
struct StageMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Histogram& queue = reg.histogram("serve.stage_ns.queue");
  obs::Histogram& parse = reg.histogram("serve.stage_ns.parse");
  obs::Histogram& engine = reg.histogram("serve.stage_ns.engine");
  obs::Histogram& engine_cache =
      reg.histogram("serve.stage_ns.engine_cache");
  obs::Histogram& engine_sweep =
      reg.histogram("serve.stage_ns.engine_sweep");
  obs::Histogram& serialize = reg.histogram("serve.stage_ns.serialize");
  obs::Histogram& send = reg.histogram("serve.stage_ns.send");
  obs::Histogram& wall = reg.histogram("serve.stage_ns.wall");
};

[[nodiscard]] StageMetrics& stage_metrics() {
  static StageMetrics metrics;
  return metrics;
}

scenario::SourcePathSet enumerate(const scenario::Overlay& overlay,
                                  AsId src) {
  return scenario::enumerate_length3(overlay, src);
}

}  // namespace

namespace detail {

RequestMetricsRef& request_metrics(RequestKind kind) {
  obs::Registry& reg = obs::Registry::global();
  static RequestMetricsRef paths{reg.counter("serve.requests.paths"),
                                 reg.histogram("serve.latency_ns.paths")};
  static RequestMetricsRef diversity{
      reg.counter("serve.requests.diversity"),
      reg.histogram("serve.latency_ns.diversity")};
  static RequestMetricsRef whatif{reg.counter("serve.requests.whatif"),
                                  reg.histogram("serve.latency_ns.whatif")};
  static RequestMetricsRef stats{reg.counter("serve.requests.stats"),
                                 reg.histogram("serve.latency_ns.stats")};
  static RequestMetricsRef slowlog{reg.counter("serve.requests.slowlog"),
                                   reg.histogram("serve.latency_ns.slowlog")};
  static RequestMetricsRef rebase{reg.counter("serve.requests.rebase"),
                                  reg.histogram("serve.latency_ns.rebase")};
  switch (kind) {
    case RequestKind::kPaths: return paths;
    case RequestKind::kDiversity: return diversity;
    case RequestKind::kWhatIf: return whatif;
    case RequestKind::kStats: return stats;
    case RequestKind::kSlowLog: return slowlog;
    case RequestKind::kRebase: return rebase;
  }
  return paths;  // unreachable
}

RequestMetricsRef& error_metrics() {
  obs::Registry& reg = obs::Registry::global();
  static RequestMetricsRef errors{reg.counter("serve.requests.errors"),
                                  reg.histogram("serve.latency_ns.errors")};
  return errors;
}

}  // namespace detail

/// Order-insensitive key of a delta: the memo must batch "the same dirty
/// ball" however the client listed the links. Pair direction is kept for
/// added links (provider/customer roles) and normalized for removals
/// (undirected, like Overlay).
std::string canonical_delta_key(const scenario::Delta& delta) {
  std::vector<scenario::LinkChange> add = delta.add;
  std::sort(add.begin(), add.end(),
            [](const scenario::LinkChange& x, const scenario::LinkChange& y) {
              return std::tie(x.a, x.b, x.type) < std::tie(y.a, y.b, y.type);
            });
  std::vector<std::pair<AsId, AsId>> remove;
  remove.reserve(delta.remove.size());
  for (const auto& [x, y] : delta.remove) {
    remove.emplace_back(std::min(x, y), std::max(x, y));
  }
  std::sort(remove.begin(), remove.end());
  std::string key;
  for (const scenario::LinkChange& change : add) {
    key += '+';
    key += std::to_string(change.a);
    key += ',';
    key += std::to_string(change.b);
    key += change.type == topology::LinkType::kPeering ? 'p' : 't';
  }
  for (const auto& [x, y] : remove) {
    key += '-';
    key += std::to_string(x);
    key += ',';
    key += std::to_string(y);
  }
  return key;
}

namespace {

[[nodiscard]] DiversityResult to_diversity_result(
    const scenario::SourceContribution& contribution) {
  DiversityResult result;
  result.grc_paths = contribution.grc_paths;
  result.ma_paths = contribution.ma_paths;
  result.grc_pairs = contribution.grc_pairs;
  result.ma_extra_pairs = contribution.ma_extra_pairs;
  result.mean_best_geodistance_km =
      contribution.km_pairs > 0
          ? contribution.km_sum /
                static_cast<double>(contribution.km_pairs)
          : 0.0;
  result.transit_fees = contribution.transit_fees;
  return result;
}

}  // namespace

/// The immutable unit the shared_mutex guards: one primed runner cache,
/// the overlay of its composed state, and the additive per-source
/// contributions that make whatif scoring an O(sources) fold. rebase()
/// copies, mutates the copy, and swaps - readers keep old snapshots
/// alive through the shared_ptr.
struct QueryEngine::State {
  State(const topology::CompiledTopology& base, std::vector<AsId> sources,
        scenario::SweepConfig config)
      : runner(base, std::move(sources), config), overlay(base) {}

  scenario::SweepRunner<scenario::SourcePathSet> runner;
  scenario::Overlay overlay;
  std::vector<scenario::SourceContribution> contribs;
  scenario::SourceContribution total;
  scenario::ScenarioMetrics metrics;

  /// Recomputes contribs/total/metrics from the runner's cache (after
  /// prime or rebase). Pure folds over already-enumerated path sets.
  void refresh_contributions(const scenario::MetricsAggregator& aggregator) {
    const std::vector<scenario::SourcePathSet>& cache = runner.baseline();
    contribs.clear();
    contribs.reserve(cache.size());
    total = scenario::SourceContribution{};
    scenario::MetricsAggregator::Scratch scratch;
    for (const scenario::SourcePathSet& sets : cache) {
      contribs.push_back(aggregator.contribution(overlay, sets, scratch));
      total += contribs.back();
    }
    metrics = scenario::finalize(total);
  }
};

QueryEngine::QueryEngine(const topology::CompiledTopology& base,
                         const geo::World* world,
                         const econ::Economy* economy,
                         std::vector<AsId> sources, EngineConfig config)
    : base_(&base),
      aggregator_(base, world, economy),
      sources_(std::move(sources)),
      config_(config) {
  source_index_.reserve(sources_.size());
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    util::require(sources_[i] < base.num_ases(),
                  "QueryEngine: source out of range");
    source_index_.emplace(sources_[i], i);
  }
}

QueryEngine::~QueryEngine() = default;

void QueryEngine::prime() {
  const std::lock_guard<std::mutex> writer(rebase_mutex_);
  {
    const std::shared_lock<std::shared_mutex> lock(state_mutex_);
    if (state_ != nullptr) {
      return;
    }
  }
  scenario::SweepConfig sweep;
  sweep.threads = config_.threads;
  sweep.dirty_radius = scenario::kLength3DirtyRadius;
  sweep.exec.pin_threads = config_.pin_threads;
  auto state = std::make_shared<State>(*base_, sources_, sweep);
  state->runner.prime(enumerate);
  state->refresh_contributions(aggregator_);
  const std::unique_lock<std::shared_mutex> lock(state_mutex_);
  state_ = std::move(state);
}

void QueryEngine::prime_restored(
    std::vector<scenario::SourcePathSet>&& baseline) {
  const std::lock_guard<std::mutex> writer(rebase_mutex_);
  {
    const std::shared_lock<std::shared_mutex> lock(state_mutex_);
    if (state_ != nullptr) {
      return;
    }
  }
  scenario::SweepConfig sweep;
  sweep.threads = config_.threads;
  sweep.dirty_radius = scenario::kLength3DirtyRadius;
  sweep.exec.pin_threads = config_.pin_threads;
  auto state = std::make_shared<State>(*base_, sources_, sweep);
  state->runner.restore_baseline(std::move(baseline));
  state->refresh_contributions(aggregator_);
  const std::unique_lock<std::shared_mutex> lock(state_mutex_);
  state_ = std::move(state);
}

std::shared_ptr<const QueryEngine::State> QueryEngine::snapshot() const {
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  util::require(state_ != nullptr, "QueryEngine: prime() first");
  return state_;
}

std::uint64_t QueryEngine::epoch() const {
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return epoch_;
}

scenario::ScenarioMetrics QueryEngine::state_metrics() const {
  return snapshot()->metrics;
}

void QueryEngine::paths(AsId src, const PathsSink& sink) const {
  const std::shared_ptr<const State> state = snapshot();
  const auto it = source_index_.find(src);
  if (it != source_index_.end()) {
    engine_metrics().paths_cache_hits.increment();
    const scenario::SourcePathSet& sets = state->runner.baseline()[it->second];
    sink(sets.grc(), sets.ma());
    return;
  }
  util::require(src < base_->num_ases(), "QueryEngine: source out of range");
  engine_metrics().paths_cold.increment();
  const scenario::SourcePathSet sets = enumerate(state->overlay, src);
  sink(sets.grc(), sets.ma());
}

DiversityResult QueryEngine::diversity(AsId src) const {
  const std::shared_ptr<const State> state = snapshot();
  const auto it = source_index_.find(src);
  if (it != source_index_.end()) {
    engine_metrics().paths_cache_hits.increment();
    return to_diversity_result(state->contribs[it->second]);
  }
  util::require(src < base_->num_ases(), "QueryEngine: source out of range");
  engine_metrics().paths_cold.increment();
  const scenario::SourcePathSet sets = enumerate(state->overlay, src);
  return to_diversity_result(aggregator_.contribution(state->overlay, sets));
}

WhatIfResult QueryEngine::compute_whatif(const State& state,
                                         const scenario::Delta& delta) const {
  scenario::SweepStats stats;
  std::vector<std::size_t> dirty_positions;
  std::vector<scenario::SourceContribution> fresh;
  scenario::MetricsAggregator::Scratch scratch;
  state.runner.evaluate_dirty_visit(
      delta, enumerate,
      [&](std::size_t i, const scenario::Overlay& overlay,
          const scenario::SourcePathSet& result) {
        dirty_positions.push_back(i);
        fresh.push_back(aggregator_.contribution(overlay, result, scratch));
      },
      &stats);

  // Splice the dirty slices into the state's per-source contributions
  // (fixed source-order association, exactly like the optimizer's fold).
  scenario::SourceContribution total;
  std::size_t next = 0;
  for (std::size_t i = 0; i < state.contribs.size(); ++i) {
    if (next < dirty_positions.size() && dirty_positions[next] == i) {
      total += fresh[next];
      ++next;
    } else {
      total += state.contribs[i];
    }
  }
  const scenario::ScenarioMetrics metrics = scenario::finalize(total);
  const scenario::MetricsDelta marginal =
      scenario::subtract(metrics, state.metrics);

  WhatIfResult result;
  result.paths_delta = marginal.paths;
  result.pairs_delta = marginal.pairs;
  result.mean_km_delta = marginal.mean_best_geodistance_km;
  result.fees_delta = marginal.transit_fees;
  result.utility = scenario::operator_utility(marginal, config_.weights);
  result.recomputed_sources = stats.recomputed_sources;
  result.cached_sources = stats.cached_sources;
  result.ball_size = stats.ball_size;
  return result;
}

QueryEngine::ContributionView QueryEngine::contributions() const {
  const std::shared_ptr<const State> state = snapshot();
  ContributionView view;
  view.contribs = state->contribs;
  view.pin = std::move(state);
  return view;
}

QueryEngine::WhatIfSlice QueryEngine::whatif_slice(
    const scenario::Delta& delta) const {
  const std::shared_ptr<const State> state = snapshot();
  WhatIfSlice slice;
  scenario::MetricsAggregator::Scratch scratch;
  state->runner.evaluate_dirty_visit(
      delta, enumerate,
      [&](std::size_t i, const scenario::Overlay& overlay,
          const scenario::SourcePathSet& result) {
        slice.dirty_positions.push_back(i);
        slice.fresh.push_back(
            aggregator_.contribution(overlay, result, scratch));
      },
      &slice.stats);
  slice.baseline = state->contribs;
  slice.pin = std::move(state);
  return slice;
}

WhatIfResult QueryEngine::whatif(const scenario::Delta& delta) const {
  std::shared_ptr<const State> state;
  std::uint64_t epoch = 0;
  {
    const std::shared_lock<std::shared_mutex> lock(state_mutex_);
    util::require(state_ != nullptr, "QueryEngine: prime() first");
    state = state_;
    epoch = epoch_;
  }
  if (config_.max_batch == 0) {
    engine_metrics().memo_unshared.increment();
    return compute_whatif(*state, delta);
  }

  const std::string key = canonical_delta_key(delta);
  std::shared_future<WhatIfResult> shared;
  std::promise<WhatIfResult> promise;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(memo_mutex_);
    const auto it = memo_.find(key);
    if (it != memo_.end() && it->second.epoch == epoch) {
      shared = it->second.future;
    } else if (it != memo_.end() || memo_.size() < config_.max_batch) {
      shared = promise.get_future().share();
      memo_[key] = MemoEntry{epoch, shared};
      owner = true;
    }
    // else: batch full - compute unshared below.
  }
  if (!owner && shared.valid()) {
    engine_metrics().memo_hits.increment();
    return shared.get();
  }
  if (!owner) {
    engine_metrics().memo_unshared.increment();
    return compute_whatif(*state, delta);
  }
  engine_metrics().memo_shared.increment();
  try {
    WhatIfResult result = compute_whatif(*state, delta);
    promise.set_value(result);
    return result;
  } catch (...) {
    promise.set_exception(std::current_exception());
    throw;
  }
}

void QueryEngine::rebase(const scenario::Delta& step) {
  const std::lock_guard<std::mutex> writer(rebase_mutex_);
  const std::shared_ptr<const State> current = snapshot();
  // Copy-on-rebase: the expensive work happens on a private clone while
  // readers keep serving the old snapshot.
  auto next = std::make_shared<State>(*current);
  next->runner.rebase(step, enumerate);
  next->overlay.clear();
  next->overlay.apply(next->runner.state());
  next->refresh_contributions(aggregator_);
  {
    const std::unique_lock<std::shared_mutex> lock(state_mutex_);
    state_ = std::move(next);
    ++epoch_;
  }
  engine_metrics().rebases.increment();
  flush_whatif_memo();
}

void QueryEngine::flush_whatif_memo() const {
  const std::lock_guard<std::mutex> lock(memo_mutex_);
  // The memo size at flush is the realized epoch batch: how many
  // distinct deltas shared this state generation.
  engine_metrics().batch.record(memo_.size());
  memo_.clear();
}

void QueryEngine::handle_line(std::string_view line, std::string& out,
                              RequestStages* stages) const {
  RequestStages local;
  RequestStages& st = stages != nullptr ? *stages : local;
  st.start_ns = stage_now_ns();
  std::uint64_t id = 0;
  bool parsed = false;
  try {
    const Request request = parse_request(line, &id);
    const std::uint64_t parsed_ns = stage_now_ns();
    st.parse_ns = parsed_ns - st.start_ns;
    st.wire_id = request.id;
    st.slow_kind = static_cast<std::uint64_t>(request.kind);
    parsed = true;
    // Count the request before handling it, so a stats response
    // deterministically includes itself (the CI smoke asserts exact
    // counts for a scripted session).
    detail::RequestMetricsRef& metrics = detail::request_metrics(request.kind);
    metrics.count.increment();
    switch (request.kind) {
      case RequestKind::kPaths: {
        st.source = request.source;
        st.work = source_index_.contains(request.source)
                      ? EngineWork::kCache
                      : EngineWork::kSweep;
        // Serialization happens inside the engine sink (the spans are
        // only valid during the call), so it is measured directly and
        // subtracted from the surrounding interval: engine + serialize
        // covers [parse end, response done) exactly.
        std::uint64_t serialize_ns = 0;
        paths(request.source,
              [&](std::span<const diversity::Length3Path> grc,
                  std::span<const diversity::Length3Path> ma) {
                const std::uint64_t serialize_start = stage_now_ns();
                append_paths_response(out, request.id, request.source, grc,
                                      ma);
                serialize_ns = stage_now_ns() - serialize_start;
              });
        const std::uint64_t done_ns = stage_now_ns();
        st.serialize_ns = serialize_ns;
        st.engine_ns = done_ns - parsed_ns - serialize_ns;
        metrics.latency_ns.record(done_ns - st.start_ns);
        break;
      }
      case RequestKind::kDiversity: {
        st.source = request.source;
        st.work = source_index_.contains(request.source)
                      ? EngineWork::kCache
                      : EngineWork::kSweep;
        const DiversityResult result = diversity(request.source);
        const std::uint64_t engine_done_ns = stage_now_ns();
        st.engine_ns = engine_done_ns - parsed_ns;
        append_diversity_response(out, request.id, request.source, result);
        const std::uint64_t done_ns = stage_now_ns();
        st.serialize_ns = done_ns - engine_done_ns;
        metrics.latency_ns.record(done_ns - st.start_ns);
        break;
      }
      case RequestKind::kWhatIf: {
        st.delta_links =
            request.delta.add.size() + request.delta.remove.size();
        st.work = EngineWork::kSweep;
        const WhatIfResult result = whatif(request.delta);
        const std::uint64_t engine_done_ns = stage_now_ns();
        st.engine_ns = engine_done_ns - parsed_ns;
        append_whatif_response(out, request.id, result);
        const std::uint64_t done_ns = stage_now_ns();
        st.serialize_ns = done_ns - engine_done_ns;
        metrics.latency_ns.record(done_ns - st.start_ns);
        break;
      }
      case RequestKind::kStats: {
        // Latency recorded before the snapshot, so the histogram's count
        // matches the counter in the response it ships.
        metrics.latency_ns.record(stage_now_ns() - st.start_ns);
        obs::refresh_process_gauges();
        const std::uint64_t current_epoch = epoch();
        const obs::MetricsSnapshot snap = obs::snapshot_metrics();
        const std::uint64_t engine_done_ns = stage_now_ns();
        st.engine_ns = engine_done_ns - parsed_ns;
        append_stats_response(out, request.id,
                              obs::build_info().git_describe,
                              current_epoch, snap);
        st.serialize_ns = stage_now_ns() - engine_done_ns;
        break;
      }
      case RequestKind::kRebase:
        // Rebase over the wire is the shard router's job (it owns the
        // cross-shard epoch barrier); on the bare engine it would race
        // the const dispatch path, so the kind is rejected here.
        throw util::PreconditionError(
            "rebase requires the shard-router front end");
      case RequestKind::kSlowLog: {
        metrics.latency_ns.record(stage_now_ns() - st.start_ns);
        obs::SlowQueryLog& log = obs::SlowQueryLog::global();
        const std::vector<obs::SlowQueryRecord> entries = log.snapshot();
        const std::uint64_t engine_done_ns = stage_now_ns();
        st.engine_ns = engine_done_ns - parsed_ns;
        append_slowlog_response(out, request.id, log.threshold_ns(),
                                entries);
        st.serialize_ns = stage_now_ns() - engine_done_ns;
        break;
      }
    }
  } catch (const std::exception& e) {
    const std::uint64_t caught_ns = stage_now_ns();
    // Attribute the time up to the failure to the stage it died in:
    // parse failures to parse, everything later to engine.
    if (!parsed) {
      st.parse_ns = caught_ns - st.start_ns;
    } else {
      st.engine_ns = caught_ns - st.start_ns - st.parse_ns;
      st.serialize_ns = 0;
    }
    st.wire_id = id;
    st.slow_kind = kSlowKindError;
    st.work = EngineWork::kNone;
    detail::RequestMetricsRef& errors = detail::error_metrics();
    errors.count.increment();
    errors.latency_ns.record(caught_ns - st.start_ns);
    append_error_response(out, id, e.what());
    st.serialize_ns += stage_now_ns() - caught_ns;
  }
  if (stages == nullptr) {
    // --direct / in-process callers: no queue or send stages, finish
    // the observation here.
    finish_request_observation(st);
  }
}

void finish_request_observation(const RequestStages& st) {
  if constexpr (!obs::enabled()) {
    return;
  }
  StageMetrics& metrics = stage_metrics();
  metrics.queue.record(st.queue_ns());
  metrics.parse.record(st.parse_ns);
  metrics.engine.record(st.engine_ns);
  switch (st.work) {
    case EngineWork::kCache:
      metrics.engine_cache.record(st.engine_ns);
      break;
    case EngineWork::kSweep:
      metrics.engine_sweep.record(st.engine_ns);
      break;
    case EngineWork::kNone:
      break;
  }
  metrics.serialize.record(st.serialize_ns);
  metrics.send.record(st.send_ns);
  metrics.wall.record(st.wall_ns());

  obs::SlowQueryRecord record;
  record.wire_id = st.wire_id;
  record.kind = st.slow_kind;
  record.source = st.source;
  record.delta_links = st.delta_links;
  record.wall_ns = st.wall_ns();
  record.queue_ns = st.queue_ns();
  record.parse_ns = st.parse_ns;
  record.engine_ns = st.engine_ns;
  record.serialize_ns = st.serialize_ns;
  record.send_ns = st.send_ns;
  obs::SlowQueryLog::global().record(record);

  if (obs::trace_enabled()) {
    // The span tree: one root per request carrying the wire id, one
    // child per nonzero stage. Stage start offsets are the cumulative
    // sums of the stage durations (serialize interleaves with engine
    // inside the paths sink, so its own interval is approximated as
    // following the engine stage; durations stay exact).
    const std::uint64_t root_id = obs::trace_next_span_id();
    const std::uint64_t root_start =
        st.enqueue_ns != 0 ? st.enqueue_ns : st.start_ns;
    std::uint64_t cursor = root_start;
    const auto stage = [&](const char* name, std::uint64_t duration_ns) {
      if (duration_ns != 0) {
        obs::trace_record_span(
            name, cursor, cursor + duration_ns,
            obs::SpanArgs{obs::trace_next_span_id(), root_id, 0, false});
      }
      cursor += duration_ns;
    };
    stage("serve.stage.queue", st.queue_ns());
    stage("serve.stage.parse", st.parse_ns);
    stage("serve.stage.engine", st.engine_ns);
    stage("serve.stage.serialize", st.serialize_ns);
    stage("serve.stage.send", st.send_ns);
    obs::trace_record_span("serve.request", root_start, cursor,
                           obs::SpanArgs{root_id, 0, st.wire_id, true});
  }
}

}  // namespace panagree::serve
