#include <gtest/gtest.h>

#include "panagree/core/agreements/mutuality.hpp"
#include "panagree/core/bargain/negotiation.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/topology/examples.hpp"
#include "panagree/topology/generator.hpp"

namespace panagree::bargain {
namespace {

using topology::make_fig1;

/// Fixture: Fig. 1 with customer traffic flowing via providers, the state
/// from which the D-E negotiation should be derivable automatically.
class NegotiationFixture : public ::testing::Test {
 protected:
  NegotiationFixture() : t_(make_fig1()), economy_(t_.graph) {
    economy_.set_link_pricing(t_.A, t_.D, econ::PricingFunction::per_unit(2.0));
    economy_.set_link_pricing(t_.B, t_.E, econ::PricingFunction::per_unit(2.0));
    economy_.set_link_pricing(t_.D, t_.H, econ::PricingFunction::per_unit(2.6));
    economy_.set_link_pricing(t_.E, t_.I, econ::PricingFunction::per_unit(2.6));
    economy_.set_internal_cost(t_.D, econ::InternalCostFunction::linear(0.05));
    economy_.set_internal_cost(t_.E, econ::InternalCostFunction::linear(0.05));
    // D ships 4 units to B via provider A; E ships 4 to A via provider B.
    base_.add_path_flow(std::vector<topology::AsId>{t_.H, t_.D, t_.A, t_.B},
                        4.0);
    base_.add_path_flow(std::vector<topology::AsId>{t_.I, t_.E, t_.B, t_.A},
                        4.0);
  }

  topology::Fig1 t_;
  econ::Economy economy_;
  econ::TrafficAllocation base_;
  traffic::DemandElasticity elasticity_{
      {.max_new_fraction = 1.0, .half_point = 0.1}};
};

TEST_F(NegotiationFixture, DerivesSegmentsFromObservedTraffic) {
  const agreements::Agreement ma =
      agreements::make_mutuality_agreement(t_.graph, t_.D, t_.E);
  const agreements::AgreementEvaluator evaluator(economy_, base_);
  const auto x_segments = derive_segment_options(
      ma, t_.D, evaluator, elasticity_, nullptr, NegotiationOptions{});
  // D is granted {B, F} by E (and {A, C} exist on its own side). Only B has
  // a provider detour (D-A-B) carrying traffic; F is not reachable via any
  // provider of D, so no segment option is derived for it. The paths anchor
  // at D's customer H - the attracted traffic is customer traffic.
  ASSERT_EQ(x_segments.size(), 1u);
  EXPECT_EQ(x_segments[0].new_path,
            (std::vector<topology::AsId>{t_.H, t_.D, t_.E, t_.B}));
  EXPECT_EQ(x_segments[0].old_path,
            (std::vector<topology::AsId>{t_.H, t_.D, t_.A, t_.B}));
  EXPECT_DOUBLE_EQ(x_segments[0].reroutable, 4.0);
  EXPECT_GT(x_segments[0].max_new_demand, 0.0);
}

TEST_F(NegotiationFixture, EndToEndNegotiationConcludes) {
  const agreements::Agreement ma =
      agreements::make_mutuality_agreement(t_.graph, t_.D, t_.E);
  const agreements::AgreementEvaluator evaluator(economy_, base_);
  const auto negotiation =
      negotiate_agreement(ma, evaluator, elasticity_, nullptr);
  ASSERT_EQ(negotiation.problem.x_segments.size(), 1u);
  ASSERT_EQ(negotiation.problem.y_segments.size(), 1u);
  // Both structuring methods succeed on the symmetric setup.
  EXPECT_TRUE(negotiation.volume.concluded);
  EXPECT_GE(negotiation.volume.u_x, 0.0);
  EXPECT_GE(negotiation.volume.u_y, 0.0);
  ASSERT_TRUE(negotiation.cash.has_value());
  EXPECT_NEAR(negotiation.cash->u_x_after, negotiation.cash->u_y_after,
              1e-9);
  EXPECT_FALSE(negotiation.cash_only());
}

TEST_F(NegotiationFixture, CashOnlySeparationIsDetected) {
  // Make E's carrying cost high enough that no volume split helps E, while
  // the joint utility at full usage stays positive: the §IV-C case.
  economy_.set_internal_cost(t_.E, econ::InternalCostFunction::linear(0.2));
  // E gains nothing itself: strip its base traffic so its side derives no
  // segments.
  econ::TrafficAllocation one_sided;
  one_sided.add_path_flow(std::vector<topology::AsId>{t_.H, t_.D, t_.A, t_.B},
                          4.0);
  const agreements::Agreement ma =
      agreements::make_mutuality_agreement(t_.graph, t_.D, t_.E);
  const agreements::AgreementEvaluator evaluator(economy_, one_sided);
  traffic::DemandElasticity eager{{.max_new_fraction = 2.0, .half_point = 0.05}};
  const auto negotiation = negotiate_agreement(ma, evaluator, eager, nullptr);
  ASSERT_FALSE(negotiation.problem.x_segments.empty());
  EXPECT_TRUE(negotiation.problem.y_segments.empty());
  EXPECT_FALSE(negotiation.volume.concluded);
  ASSERT_TRUE(negotiation.cash.has_value());
  EXPECT_TRUE(negotiation.cash_only());
  // The compensated party ends whole.
  EXPECT_GE(negotiation.cash->u_y_after, 0.0);
}

TEST_F(NegotiationFixture, HopelessAgreementRefusedByBothMethods) {
  economy_.set_internal_cost(t_.D, econ::InternalCostFunction::linear(5.0));
  economy_.set_internal_cost(t_.E, econ::InternalCostFunction::linear(5.0));
  const agreements::Agreement ma =
      agreements::make_mutuality_agreement(t_.graph, t_.D, t_.E);
  const agreements::AgreementEvaluator evaluator(economy_, base_);
  const auto negotiation =
      negotiate_agreement(ma, evaluator, elasticity_, nullptr);
  EXPECT_FALSE(negotiation.volume.concluded);
  EXPECT_FALSE(negotiation.cash.has_value());
}

TEST_F(NegotiationFixture, EmptyTrafficDerivesNothing) {
  econ::TrafficAllocation empty;
  const agreements::Agreement ma =
      agreements::make_mutuality_agreement(t_.graph, t_.D, t_.E);
  const agreements::AgreementEvaluator evaluator(economy_, empty);
  const auto negotiation =
      negotiate_agreement(ma, evaluator, elasticity_, nullptr);
  EXPECT_TRUE(negotiation.problem.x_segments.empty());
  EXPECT_TRUE(negotiation.problem.y_segments.empty());
  EXPECT_FALSE(negotiation.volume.concluded);
  EXPECT_FALSE(negotiation.cash.has_value());
}

TEST(NegotiationGeo, GeodistanceDrivesDemandEstimates) {
  // On a generated topology with geodata, a geodesy-aware negotiation must
  // produce (weakly) different demand limits than the default-improvement
  // one, and all derived limits must respect the elasticity cap.
  topology::GeneratorParams params;
  params.num_ases = 500;
  params.tier1_count = 4;
  params.seed = 3;
  auto topo = topology::generate_internet(params);
  const econ::Economy economy = econ::make_default_economy(topo.graph);

  // Find a peer pair and give them provider traffic to reroute.
  const diversity::GeodistanceModel geodesy(topo.graph, topo.world);
  const traffic::DemandElasticity elasticity;
  for (const auto& link : topo.graph.links()) {
    if (link.type != topology::LinkType::kPeering) {
      continue;
    }
    const auto x = link.a;
    const auto y = link.b;
    const agreements::Agreement ma =
        agreements::make_mutuality_agreement(topo.graph, x, y);
    econ::TrafficAllocation base;
    bool seeded = false;
    for (const auto provider : topo.graph.providers(x)) {
      for (const auto dest : ma.grant_y.all()) {
        if (topo.graph.link_between(provider, dest) && dest != provider &&
            dest != x && provider != x) {
          base.add_path_flow(std::vector<topology::AsId>{x, provider, dest},
                             5.0);
          seeded = true;
          break;
        }
      }
      if (seeded) {
        break;
      }
    }
    if (!seeded) {
      continue;
    }
    const agreements::AgreementEvaluator evaluator(economy, base);
    const auto with_geo = derive_segment_options(
        ma, x, evaluator, elasticity, &geodesy, NegotiationOptions{});
    const auto without_geo = derive_segment_options(
        ma, x, evaluator, elasticity, nullptr, NegotiationOptions{});
    ASSERT_FALSE(with_geo.empty());
    ASSERT_EQ(with_geo.size(), without_geo.size());
    for (const auto& option : with_geo) {
      EXPECT_GE(option.max_new_demand, 0.0);
      // The elasticity cap bounds every estimate.
      EXPECT_LE(option.max_new_demand,
                elasticity.params().max_new_fraction *
                        std::max(option.reroutable, 5.0) +
                    1e-9);
    }
    return;  // one pair suffices
  }
  GTEST_SKIP() << "no suitable peer pair found";
}

}  // namespace
}  // namespace panagree::bargain
