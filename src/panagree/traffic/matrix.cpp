#include "panagree/traffic/matrix.hpp"

#include <cmath>

namespace panagree::traffic {

double gravity_mass(const Graph& graph, AsId as) {
  return 1.0 + static_cast<double>(graph.customers(as).size());
}

std::vector<Demand> generate_gravity_demands(const Graph& graph,
                                             const GravityParams& params,
                                             util::Rng& rng) {
  util::require(params.total_volume > 0.0,
                "generate_gravity_demands: total volume must be positive");
  util::require(graph.num_ases() >= 2,
                "generate_gravity_demands: need at least two ASes");
  std::vector<Demand> demands;
  if (params.sampled_pairs == 0) {
    double weight_sum = 0.0;
    for (AsId s = 0; s < graph.num_ases(); ++s) {
      for (AsId d = 0; d < graph.num_ases(); ++d) {
        if (s == d) {
          continue;
        }
        weight_sum += std::pow(gravity_mass(graph, s) * gravity_mass(graph, d),
                               params.exponent);
      }
    }
    for (AsId s = 0; s < graph.num_ases(); ++s) {
      for (AsId d = 0; d < graph.num_ases(); ++d) {
        if (s == d) {
          continue;
        }
        const double w = std::pow(
            gravity_mass(graph, s) * gravity_mass(graph, d), params.exponent);
        demands.push_back(Demand{s, d, params.total_volume * w / weight_sum});
      }
    }
    return demands;
  }
  // Sampled mode: draw endpoints mass-proportionally.
  std::vector<double> masses(graph.num_ases());
  for (AsId as = 0; as < graph.num_ases(); ++as) {
    masses[as] = std::pow(gravity_mass(graph, as), params.exponent);
  }
  const double per_pair =
      params.total_volume / static_cast<double>(params.sampled_pairs);
  demands.reserve(params.sampled_pairs);
  for (std::size_t i = 0; i < params.sampled_pairs; ++i) {
    const AsId s = static_cast<AsId>(rng.weighted_index(masses));
    AsId d = s;
    while (d == s) {
      d = static_cast<AsId>(rng.weighted_index(masses));
    }
    demands.push_back(Demand{s, d, per_pair});
  }
  return demands;
}

}  // namespace panagree::traffic
