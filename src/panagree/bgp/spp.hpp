// The Stable Paths Problem (SPP) of Griffin, Shepherd & Wilfong, the formal
// model behind the paper's §II stability discussion.
//
// An SPP instance fixes one destination (the origin) and, for every other
// node, an ordered list of permitted paths to the origin (most preferred
// first). BGP-style route selection is the Simple Path Vector Protocol
// (SPVP) over this structure; see simulator.hpp. DISAGREE, BAD GADGET and
// the BGP-wedgie instances of §II are built in gadgets.hpp, and Gao-Rexford
// policies are compiled into SPP instances in policy.hpp.
//
// Storage: permitted paths are interned into one paths::PathPool arena
// (offset-based slices over a single contiguous AS-id buffer) instead of a
// vector of vector of vectors - at CAIDA scale an instance holds millions
// of short paths, and one heap block per path does not survive that.
// permitted() hands out a PathListView window; callers that need owning
// std::vector paths materialize them per path (PathView::to_path) or per
// node (permitted_paths).
#pragma once

#include <vector>

#include "panagree/paths/path_pool.hpp"
#include "panagree/topology/graph.hpp"

namespace panagree::bgp {

using topology::AsId;

/// A path is the node sequence from its owner to the origin (inclusive).
/// The empty path means "no route".
using Path = std::vector<AsId>;

class SppInstance {
 public:
  /// Creates an instance over nodes [0, num_nodes) with the given origin.
  SppInstance(std::size_t num_nodes, AsId origin);

  /// Sets the ranked permitted paths of `node` (most preferred first).
  /// Every path must start at `node`, end at the origin, and be simple.
  /// Re-setting a node replaces its list (the retired paths stay interned
  /// in the arena until the instance is destroyed; lists are expected to
  /// be set once per node, as policy compilation does).
  void set_permitted(AsId node, std::vector<Path> ranked);

  /// The ranked permitted paths of `node` as a zero-copy window into the
  /// path arena. Valid until the next set_permitted call.
  [[nodiscard]] paths::PathListView permitted(AsId node) const;

  /// permitted() materialized into owning paths (adapter for callers that
  /// need std::vector semantics; allocates per path).
  [[nodiscard]] std::vector<Path> permitted_paths(AsId node) const;

  [[nodiscard]] AsId origin() const { return origin_; }
  [[nodiscard]] std::size_t num_nodes() const { return runs_.size(); }

  /// Rank of `path` at `node` (0 = most preferred); -1 if not permitted.
  [[nodiscard]] int rank_of(AsId node, const Path& path) const;

  /// Neighbors of `node` that appear as next hops in its permitted paths.
  [[nodiscard]] std::vector<AsId> next_hops(AsId node) const;

  /// Checks structural well-formedness; throws util::PreconditionError.
  void validate() const;

 private:
  /// One node's permitted list: a run of slices in slices_.
  struct Run {
    std::uint32_t first = 0;
    std::uint32_t count = 0;
  };

  AsId origin_;
  paths::PathPool pool_;
  /// Slice table; each node's Run indexes a contiguous range of it.
  std::vector<paths::PathPool::Slice> slices_;
  std::vector<Run> runs_;
};

/// A path assignment: one selected path (possibly empty) per node.
using Assignment = std::vector<Path>;

/// The path `node` would select given the neighbors' current paths: the
/// best-ranked permitted path of the form node . assignment[next_hop].
/// Returns the empty path if nothing is available.
[[nodiscard]] Path best_available_path(const SppInstance& instance, AsId node,
                                       const Assignment& assignment);

/// True iff every node's selected path is its best available path.
[[nodiscard]] bool is_stable(const SppInstance& instance,
                             const Assignment& assignment);

/// Exhaustively enumerates all stable assignments (exponential; intended for
/// gadget-sized instances). Stops after `limit` solutions.
[[nodiscard]] std::vector<Assignment> find_stable_solutions(
    const SppInstance& instance, std::size_t limit = 16);

}  // namespace panagree::bgp
