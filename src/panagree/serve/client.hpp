// Blocking line-oriented client connection to a panagree-serve daemon -
// the one implementation of connect / send-line / read-line shared by
// panagree-query and the serve tests, so the real client and the test
// client cannot drift from the wire framing.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace panagree::serve {

/// Client-side socket failure (connect refused, connection lost while
/// sending).
class ClientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ClientConnection {
 public:
  /// Connects to 127.0.0.1:`port`; throws ClientError on failure.
  explicit ClientConnection(std::uint16_t port);
  ~ClientConnection();

  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  /// Sends one request line (the '\n' frame is appended here). Throws
  /// ClientError if the connection is lost mid-send.
  void send_line(std::string_view line);

  /// The next newline-terminated response line (terminator included),
  /// or the empty string once the server closed the connection.
  [[nodiscard]] std::string read_line();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace panagree::serve
