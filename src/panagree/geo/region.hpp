// A coarse world model: regions (continent-like clusters) with city pools.
//
// Substitutes the GeoLite2 + prefix-to-AS pipeline of the paper: ASes are
// assigned points of presence (PoPs) drawn from region city pools, their
// center of gravity is the spherical centroid of those PoPs, and link
// interconnection facilities sit in cities shared between the endpoints.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "panagree/geo/coordinates.hpp"
#include "panagree/util/rng.hpp"

namespace panagree::geo {

/// A city usable as an AS PoP or link interconnection facility.
struct City {
  std::string name;
  LatLng location;
  std::size_t region = 0;
};

/// A continent-like cluster of cities.
struct Region {
  std::string name;
  LatLng center;
  double radius_km = 0.0;
  std::vector<std::size_t> city_ids;  // indices into World::cities()
};

/// World model with a fixed set of regions and synthetic city pools.
class World {
 public:
  /// Builds the default five-region world (NA, SA, EU, AS, OC analogues)
  /// with `cities_per_region` synthetic cities each, placed with a seeded
  /// scatter around the region centers.
  static World make_default(util::Rng& rng, std::size_t cities_per_region = 40);

  /// Rebuilds a world from its region and city tables (the storage layer's
  /// snapshot reader). Validates the cross-references: every city's region
  /// index and every region's city ids must be in range. Throws
  /// util::PreconditionError on violation.
  [[nodiscard]] static World restore(std::vector<Region> regions,
                                     std::vector<City> cities);

  [[nodiscard]] const std::vector<Region>& regions() const { return regions_; }
  [[nodiscard]] const std::vector<City>& cities() const { return cities_; }
  [[nodiscard]] const City& city(std::size_t id) const;

  /// Uniformly random city of a region.
  [[nodiscard]] std::size_t sample_city(std::size_t region,
                                        util::Rng& rng) const;

  /// Region index sampled proportionally to the given weights (one per
  /// region); with empty weights, uniform over regions.
  [[nodiscard]] std::size_t sample_region(
      util::Rng& rng, const std::vector<double>& weights = {}) const;

 private:
  std::vector<Region> regions_;
  std::vector<City> cities_;
};

}  // namespace panagree::geo
