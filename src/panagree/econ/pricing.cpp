#include "panagree/econ/pricing.hpp"

#include <cmath>

#include "panagree/util/error.hpp"

namespace panagree::econ {

PricingFunction::PricingFunction(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  util::require(alpha >= 0.0, "PricingFunction: alpha must be non-negative");
  util::require(beta >= 0.0, "PricingFunction: beta must be non-negative");
}

PricingFunction PricingFunction::flat(double fee) {
  return PricingFunction(fee, 0.0);
}

PricingFunction PricingFunction::per_unit(double unit_price) {
  return PricingFunction(unit_price, 1.0);
}

PricingFunction PricingFunction::superlinear(double alpha, double beta) {
  util::require(beta > 1.0, "PricingFunction::superlinear: beta must be > 1");
  return PricingFunction(alpha, beta);
}

double PricingFunction::operator()(double volume) const {
  util::require(volume >= 0.0, "PricingFunction: volume must be non-negative");
  if (beta_ == 0.0) {
    return alpha_;  // flat fee, even at volume 0 (0^0 convention: 1)
  }
  if (volume == 0.0) {
    return 0.0;
  }
  return alpha_ * std::pow(volume, beta_);
}

double PricingFunction::marginal(double volume) const {
  util::require(volume >= 0.0,
                "PricingFunction::marginal: volume must be non-negative");
  if (beta_ == 0.0) {
    return 0.0;
  }
  if (volume == 0.0) {
    return beta_ == 1.0 ? alpha_ : 0.0;
  }
  return alpha_ * beta_ * std::pow(volume, beta_ - 1.0);
}

}  // namespace panagree::econ
