#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "panagree/core/bosco/distribution.hpp"

namespace panagree::bosco {
namespace {

std::unique_ptr<UtilityDistribution> make_dist(int kind) {
  switch (kind) {
    case 0:
      return std::make_unique<UniformDistribution>(-1.0, 1.0);
    case 1:
      return std::make_unique<UniformDistribution>(-0.5, 1.0);
    case 2:
      return std::make_unique<TriangularDistribution>(-1.0, 0.25, 1.0);
    case 3:
      return std::make_unique<TriangularDistribution>(0.0, 0.0, 2.0);
    case 4:
      return std::make_unique<TruncatedNormalDistribution>(0.2, 0.5, -1.0,
                                                           1.5);
    default:
      return std::make_unique<TruncatedNormalDistribution>(-0.5, 1.0, -2.0,
                                                           0.5);
  }
}

class DistributionSweep : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<UtilityDistribution> dist_ = make_dist(GetParam());
};

TEST_P(DistributionSweep, CdfIsMonotoneFromZeroToOne) {
  const double lo = dist_->support_lo();
  const double hi = dist_->support_hi();
  EXPECT_NEAR(dist_->cdf(lo), 0.0, 1e-12);
  EXPECT_NEAR(dist_->cdf(hi), 1.0, 1e-12);
  double prev = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double u = lo + (hi - lo) * i / 100.0;
    const double c = dist_->cdf(u);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST_P(DistributionSweep, PdfIntegratesToCdf) {
  const double lo = dist_->support_lo();
  const double hi = dist_->support_hi();
  const int n = 4000;
  const double h = (hi - lo) / n;
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    const double mid = lo + (i + 0.5) * h;
    acc += dist_->pdf(mid) * h;
    if (i % 500 == 499) {
      EXPECT_NEAR(acc, dist_->cdf(lo + (i + 1) * h), 2e-3);
    }
  }
  EXPECT_NEAR(acc, 1.0, 2e-3);
}

TEST_P(DistributionSweep, MassInSubintervalsSumsToOne) {
  const double lo = dist_->support_lo();
  const double hi = dist_->support_hi();
  double total = 0.0;
  for (int i = 0; i < 10; ++i) {
    total += dist_->mass_in(lo + (hi - lo) * i / 10.0,
                            lo + (hi - lo) * (i + 1) / 10.0);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(DistributionSweep, FirstMomentMatchesNumericIntegral) {
  const double lo = dist_->support_lo();
  const double hi = dist_->support_hi();
  // Three probe intervals including the full support.
  const double probes[3][2] = {
      {lo, hi}, {lo + (hi - lo) * 0.2, lo + (hi - lo) * 0.7}, {lo, lo + (hi - lo) * 0.5}};
  for (const auto& probe : probes) {
    const int n = 20000;
    const double h = (probe[1] - probe[0]) / n;
    double numeric = 0.0;
    for (int i = 0; i < n; ++i) {
      const double mid = probe[0] + (i + 0.5) * h;
      numeric += mid * dist_->pdf(mid) * h;
    }
    EXPECT_NEAR(dist_->first_moment_in(probe[0], probe[1]), numeric, 5e-4);
  }
}

TEST_P(DistributionSweep, SamplesStayInSupportAndMatchMean) {
  util::Rng rng(GetParam() + 1);
  const double lo = dist_->support_lo();
  const double hi = dist_->support_hi();
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = dist_->sample(rng);
    ASSERT_GE(v, lo - 1e-12);
    ASSERT_LE(v, hi + 1e-12);
    sum += v;
  }
  const double analytic_mean = dist_->first_moment_in(lo, hi);
  EXPECT_NEAR(sum / n, analytic_mean, 0.02 * (hi - lo));
}

TEST_P(DistributionSweep, CloneBehavesIdentically) {
  const auto clone = dist_->clone();
  for (int i = 0; i <= 20; ++i) {
    const double u = dist_->support_lo() +
                     (dist_->support_hi() - dist_->support_lo()) * i / 20.0;
    EXPECT_DOUBLE_EQ(dist_->cdf(u), clone->cdf(u));
    EXPECT_DOUBLE_EQ(dist_->pdf(u), clone->pdf(u));
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DistributionSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(Uniform, ClosedFormMoments) {
  const UniformDistribution u(-1.0, 1.0);
  EXPECT_NEAR(u.first_moment_in(-1.0, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(u.first_moment_in(0.0, 1.0), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(u.pdf(0.0), 0.5);
  EXPECT_DOUBLE_EQ(u.cdf(0.0), 0.5);
}

TEST(Uniform, RejectsEmptyInterval) {
  EXPECT_THROW(UniformDistribution(1.0, 1.0), util::PreconditionError);
}

TEST(Triangular, ModeHasPeakDensity) {
  const TriangularDistribution t(-1.0, 0.5, 1.0);
  EXPECT_GT(t.pdf(0.5), t.pdf(0.0));
  EXPECT_GT(t.pdf(0.5), t.pdf(0.9));
  EXPECT_DOUBLE_EQ(t.pdf(-2.0), 0.0);
}

TEST(Triangular, RejectsModeOutsideSupport) {
  EXPECT_THROW(TriangularDistribution(0.0, 3.0, 1.0), util::PreconditionError);
}

TEST(TruncatedNormal, RenormalizesMass) {
  const TruncatedNormalDistribution t(0.0, 1.0, -1.0, 1.0);
  EXPECT_NEAR(t.mass_in(-1.0, 1.0), 1.0, 1e-12);
  // Symmetric window around the mean: zero first moment.
  EXPECT_NEAR(t.first_moment_in(-1.0, 1.0), 0.0, 1e-12);
}

TEST(TruncatedNormal, RejectsNonPositiveSigma) {
  EXPECT_THROW(TruncatedNormalDistribution(0.0, 0.0, -1.0, 1.0),
               util::PreconditionError);
}

}  // namespace
}  // namespace panagree::bosco
