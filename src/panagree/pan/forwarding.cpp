#include "panagree/pan/forwarding.hpp"

#include <set>

#include "panagree/util/rng.hpp"

namespace panagree::pan {

std::vector<AsId> ForwardingPath::ases() const {
  std::vector<AsId> out;
  out.reserve(hops.size());
  for (const HopField& hop : hops) {
    out.push_back(hop.as);
  }
  return out;
}

KeyStore::KeyStore(std::uint64_t master_seed, std::size_t num_ases) {
  keys_.reserve(num_ases);
  std::uint64_t sm = master_seed;
  for (std::size_t i = 0; i < num_ases; ++i) {
    MacKey key;
    key.k0 = util::splitmix64(sm);
    key.k1 = util::splitmix64(sm);
    keys_.push_back(key);
  }
}

const MacKey& KeyStore::key(AsId as) const {
  util::require(as < keys_.size(), "KeyStore::key: AS out of range");
  return keys_[as];
}

namespace {

std::uint64_t hop_mac(const KeyStore& keys, const HopField& hop,
                      std::uint64_t prev_mac) {
  return siphash24_words(keys.key(hop.as),
                         {hop.as, hop.ingress, hop.egress, prev_mac});
}

}  // namespace

ForwardingPath issue_path(const KeyStore& keys, std::span<const AsId> path) {
  util::require(path.size() >= 2, "issue_path: need at least two ASes");
  std::set<AsId> seen(path.begin(), path.end());
  util::require(seen.size() == path.size(), "issue_path: path must be simple");
  ForwardingPath fp;
  fp.hops.reserve(path.size());
  std::uint64_t prev_mac = 0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    HopField hop;
    hop.as = path[i];
    hop.ingress = i == 0 ? topology::kInvalidAs : path[i - 1];
    hop.egress = i + 1 == path.size() ? topology::kInvalidAs : path[i + 1];
    hop.mac = hop_mac(keys, hop, prev_mac);
    prev_mac = hop.mac;
    fp.hops.push_back(hop);
  }
  return fp;
}

ForwardingEngine::ForwardingEngine(const Graph& graph, const KeyStore& keys)
    : compiled_(graph), keys_(&keys) {}

ForwardResult ForwardingEngine::forward(const ForwardingPath& path) const {
  ForwardResult result;
  if (path.hops.size() < 2) {
    result.reason = DropReason::kMalformed;
    return result;
  }
  {
    std::set<AsId> seen;
    for (const HopField& hop : path.hops) {
      if (!seen.insert(hop.as).second) {
        result.reason = DropReason::kMalformed;
        return result;
      }
    }
  }
  std::uint64_t prev_mac = 0;
  for (std::size_t i = 0; i < path.hops.size(); ++i) {
    const HopField& hop = path.hops[i];
    // Each on-path AS verifies its own hop field (the chained MAC binds the
    // hop to its position) before forwarding.
    if (hop.as >= compiled_.num_ases() ||
        hop_mac(*keys_, hop, prev_mac) != hop.mac) {
      result.reason = DropReason::kInvalidMac;
      return result;
    }
    // Cross-check the header's neighbor fields against the path structure.
    const AsId expect_ingress =
        i == 0 ? topology::kInvalidAs : path.hops[i - 1].as;
    const AsId expect_egress =
        i + 1 == path.hops.size() ? topology::kInvalidAs : path.hops[i + 1].as;
    if (hop.ingress != expect_ingress || hop.egress != expect_egress) {
      result.reason = DropReason::kInvalidMac;
      return result;
    }
    result.trace.push_back(hop.as);
    if (hop.egress != topology::kInvalidAs &&
        compiled_.find(hop.as, hop.egress) == nullptr) {
      result.reason = DropReason::kBrokenLink;
      return result;
    }
    prev_mac = hop.mac;
  }
  result.delivered = true;
  return result;
}

}  // namespace panagree::pan
