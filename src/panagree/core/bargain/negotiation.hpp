// Automated agreement negotiation (§IV end to end).
//
// Everything the two structuring methods need is derivable from observable
// state: the reroutable volumes come from the current traffic allocation
// (what each party ships toward the granted destinations via its
// providers), the demand limits Delta-f^max from the elasticity model fed
// with the geodistance improvement of the new segment, and the utilities
// from the economic model. negotiate_agreement() assembles the Eq. 9
// flow-volume program from an Agreement, solves it, and also prices the
// cash alternative (Eq. 11) at full expected usage - the §IV-C comparison
// as an API call.
#pragma once

#include <optional>

#include "panagree/core/agreements/agreement.hpp"
#include "panagree/core/agreements/utility.hpp"
#include "panagree/core/bargain/cash.hpp"
#include "panagree/core/bargain/flow_volume.hpp"
#include "panagree/diversity/geodistance.hpp"
#include "panagree/traffic/elasticity.hpp"

namespace panagree::bargain {

struct NegotiationOptions {
  /// Improvement ratio assumed for new segments when no geodistance model
  /// is available.
  double default_improvement = 0.2;
  /// Solver configuration for the flow-volume program.
  FlowVolumeSolverOptions solver;
};

/// Everything derived for one agreement negotiation.
struct DerivedNegotiation {
  FlowVolumeProblem problem;
  FlowVolumeSolution volume;      ///< the Eq. 9 outcome
  double u_x_full = 0.0;          ///< party X's utility at full usage
  double u_y_full = 0.0;
  std::optional<CashDeal> cash;   ///< the Eq. 11 outcome at full usage

  /// §IV-C: true iff cash concludes where the volume program cannot.
  [[nodiscard]] bool cash_only() const {
    return cash.has_value() && !volume.concluded;
  }
};

/// Derives and solves the negotiation of `agreement` against the current
/// state. `geodesy` may be null (no latency-based demand estimation, the
/// default improvement applies); `elasticity` governs constraint III.
///
/// For each destination Z granted to party X by the partner Y, the derived
/// segment option is:
///  * new path      X - Y - Z,
///  * old path      X - P* - Z for the provider P* of X currently carrying
///    the most X->Z traffic (skipped if no provider path carries traffic
///    and no new demand is attracted),
///  * reroutable    the total volume on segments X - P - Z over all
///    providers P of X,
///  * max new       elasticity(max(base demand, reroutable), improvement),
///    where improvement compares the new segment's geodistance to the best
///    provider segment when a geodistance model is available.
[[nodiscard]] DerivedNegotiation negotiate_agreement(
    const agreements::Agreement& agreement,
    const agreements::AgreementEvaluator& evaluator,
    const traffic::DemandElasticity& elasticity,
    const diversity::GeodistanceModel* geodesy = nullptr,
    const NegotiationOptions& options = {});

/// Helper: the segment options one party derives (exposed for tests).
[[nodiscard]] std::vector<SegmentOption> derive_segment_options(
    const agreements::Agreement& agreement, topology::AsId party,
    const agreements::AgreementEvaluator& evaluator,
    const traffic::DemandElasticity& elasticity,
    const diversity::GeodistanceModel* geodesy,
    const NegotiationOptions& options);

}  // namespace panagree::bargain
