#include "panagree/bgp/policy.hpp"

#include <algorithm>

#include "panagree/paths/enumerator.hpp"
#include "panagree/paths/parallel.hpp"
#include "panagree/topology/compiled.hpp"

namespace panagree::bgp {

namespace {

using topology::CompiledTopology;

/// Relationship class used for GRC ranking: routes learned from customers
/// beat peer routes beat provider routes.
int route_class(const CompiledTopology& topo, const Path& path) {
  if (path.size() < 2) {
    return 0;
  }
  switch (*topo.role_of(path[0], path[1])) {
    case NeighborRole::kCustomer:
      return 0;
    case NeighborRole::kPeer:
      return 1;
    case NeighborRole::kProvider:
      return 2;
  }
  return 3;
}

void rank_paths(const CompiledTopology& topo, std::vector<Path>& paths,
                bool shorter_is_better) {
  std::sort(paths.begin(), paths.end(), [&](const Path& a, const Path& b) {
    const int ca = route_class(topo, a);
    const int cb = route_class(topo, b);
    if (ca != cb) {
      return ca < cb;
    }
    if (shorter_is_better && a.size() != b.size()) {
      return a.size() < b.size();
    }
    return a < b;
  });
}

/// Enumerates, ranks, and installs the permitted paths of every node via
/// the shared engine; one parallel fan-out over source nodes.
template <typename Policy>
SppInstance compile_spp(const CompiledTopology& topo, AsId destination,
                        const GaoRexfordOptions& options,
                        const Policy& policy) {
  const paths::PathEnumerator enumerator(topo);

  std::vector<AsId> nodes;
  nodes.reserve(topo.num_ases());
  for (AsId node = 0; node < topo.num_ases(); ++node) {
    if (node != destination) {
      nodes.push_back(node);
    }
  }
  auto per_node = paths::map_sources(
      nodes, options.threads, [&](AsId node) {
        auto permitted = enumerator.paths_between(
            node, destination, options.max_path_length, policy);
        rank_paths(topo, permitted, options.shorter_is_better);
        return permitted;
      });

  SppInstance instance(topo.num_ases(), destination);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    instance.set_permitted(nodes[i], std::move(per_node[i]));
  }
  return instance;
}

}  // namespace

bool is_valley_free(const Graph& graph, const std::vector<AsId>& path) {
  return paths::is_valley_free_walk(
      path, [&](AsId x, AsId y) { return graph.role_of(x, y); });
}

bool grc_forwarding_allowed(const Graph& graph,
                            const std::vector<AsId>& path) {
  if (path.size() <= 2) {
    return true;  // no transit AS involved
  }
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    const bool prev_is_customer =
        graph.role_of(path[i], path[i - 1]) == NeighborRole::kCustomer;
    const bool next_is_customer =
        graph.role_of(path[i], path[i + 1]) == NeighborRole::kCustomer;
    if (!prev_is_customer && !next_is_customer) {
      return false;
    }
  }
  return true;
}

SppInstance make_gao_rexford_spp(const Graph& graph, AsId destination,
                                 const GaoRexfordOptions& options) {
  return make_gao_rexford_spp(CompiledTopology(graph), destination, options);
}

SppInstance make_gao_rexford_spp(const CompiledTopology& topo,
                                 AsId destination,
                                 const GaoRexfordOptions& options) {
  util::require(destination < topo.num_ases(),
                "make_gao_rexford_spp: destination out of range");
  return compile_spp(topo, destination, options, paths::ValleyFreeStep{});
}

SppInstance make_mutual_transit_spp(
    const Graph& graph, AsId destination,
    const std::vector<std::pair<AsId, AsId>>& mutual_transit,
    const GaoRexfordOptions& options) {
  return make_mutual_transit_spp(CompiledTopology(graph), destination,
                                 mutual_transit, options);
}

SppInstance make_mutual_transit_spp(
    const CompiledTopology& topo, AsId destination,
    const std::vector<std::pair<AsId, AsId>>& mutual_transit,
    const GaoRexfordOptions& options) {
  util::require(destination < topo.num_ases(),
                "make_mutual_transit_spp: destination out of range");
  return compile_spp(topo, destination, options,
                     paths::MutualTransitStep(mutual_transit));
}

}  // namespace panagree::bgp
