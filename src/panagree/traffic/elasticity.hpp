// Customer-demand elasticity: the Delta-f^max model of §IV-A.
//
// Constraint (III) of the flow-volume program bounds the newly attracted
// customer traffic on an agreement path segment P by a demand limit
// Delta-f^max_P. We model that limit as a function of how much the new path
// improves on the best previously available path (latency or bandwidth):
// better paths attract more of the (finite) latent demand.
#pragma once

namespace panagree::traffic {

struct ElasticityParams {
  /// Fraction of the base demand that is latent (attracted at best).
  double max_new_fraction = 0.5;
  /// Improvement half-point: an improvement ratio of this size attracts
  /// half of the latent demand (saturating response).
  double half_point = 0.25;
};

/// Saturating demand response.
class DemandElasticity {
 public:
  explicit DemandElasticity(ElasticityParams params = {});

  /// Maximum newly attracted traffic given the base demand toward the
  /// destination and the relative improvement of the new path
  /// (e.g. 0.3 = 30% lower latency or 30% more bandwidth; <= 0 attracts
  /// nothing).
  [[nodiscard]] double max_new_demand(double base_demand,
                                      double improvement_ratio) const;

  [[nodiscard]] const ElasticityParams& params() const { return params_; }

 private:
  ElasticityParams params_;
};

}  // namespace panagree::traffic
