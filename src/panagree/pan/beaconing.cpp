#include "panagree/pan/beaconing.hpp"

#include <algorithm>
#include <deque>

namespace panagree::pan {

BeaconService::BeaconService(const Graph& graph, BeaconingParams params)
    : graph_(&graph), params_(params), segments_(graph.num_ases()) {
  util::require(params_.beacons_per_as > 0,
                "BeaconService: beacons_per_as must be positive");
  util::require(params_.max_segment_length >= 1,
                "BeaconService: max_segment_length must be >= 1");
  util::require(graph.provider_hierarchy_is_acyclic(),
                "BeaconService: provider hierarchy must be acyclic");
  for (AsId as = 0; as < graph.num_ases(); ++as) {
    if (graph.providers(as).empty()) {
      core_.push_back(as);
    }
  }
}

void BeaconService::run() {
  if (has_run_) {
    return;
  }
  // Topological sweep over the provider DAG (Kahn), extending beacons from
  // providers to customers.
  const Graph& g = *graph_;
  std::vector<std::size_t> pending(g.num_ases());
  std::deque<AsId> ready;
  for (AsId as = 0; as < g.num_ases(); ++as) {
    pending[as] = g.providers(as).size();
    if (pending[as] == 0) {
      ready.push_back(as);
      segments_[as].push_back(PathSegment{SegmentType::kUp, {as}});
    }
  }
  const auto keep_best = [this](std::vector<PathSegment>& segs) {
    std::sort(segs.begin(), segs.end(),
              [](const PathSegment& a, const PathSegment& b) {
                if (a.ases.size() != b.ases.size()) {
                  return a.ases.size() < b.ases.size();
                }
                return a.ases < b.ases;
              });
    segs.erase(std::unique(segs.begin(), segs.end()), segs.end());
    if (segs.size() > params_.beacons_per_as) {
      segs.resize(params_.beacons_per_as);
    }
  };
  while (!ready.empty()) {
    const AsId as = ready.front();
    ready.pop_front();
    keep_best(segments_[as]);
    for (const AsId customer : g.customers(as)) {
      for (const PathSegment& seg : segments_[as]) {
        if (seg.ases.size() < params_.max_segment_length) {
          PathSegment extended = seg;
          extended.ases.push_back(customer);
          segments_[customer].push_back(std::move(extended));
        }
      }
      if (--pending[customer] == 0) {
        ready.push_back(customer);
      }
    }
  }
  has_run_ = true;
}

const std::vector<PathSegment>& BeaconService::up_segments(AsId as) const {
  util::require(as < segments_.size(),
                "BeaconService::up_segments: AS out of range");
  return segments_[as];
}

}  // namespace panagree::pan
