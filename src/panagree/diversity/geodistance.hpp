// Geodistance analysis (§VI-B, Fig. 5).
//
// The geodistance of a length-3 path A1-l12-A2-l23-A3 is
//   d(pi) = d(A1, l12) + d(l12, l23) + d(l23, A3),
// where AS positions are centroid artifacts and link positions range over
// the link's candidate facilities; with multiple facilities the minimum
// over combinations is taken, exactly as in the paper.
#pragma once

#include <span>
#include <vector>

#include "panagree/diversity/length3.hpp"
#include "panagree/geo/region.hpp"

namespace panagree::diversity {

class GeodistanceModel {
 public:
  GeodistanceModel(const Graph& graph, const geo::World& world);

  /// Geodistance of the length-3 path s-m-d in kilometres (minimized over
  /// facility combinations). Requires links s-m and m-d to exist and all
  /// three ASes to carry geodata. Safe to call concurrently and
  /// lock-free: city-to-city legs come from a precomputed matrix and
  /// AS-to-city legs are recomputed on the fly - a great-circle evaluation
  /// is cheaper than a contended cache lookup, and scales linearly with
  /// worker threads (the deployment optimizer aggregates from a parallel
  /// candidate fan-out).
  [[nodiscard]] double path_geodistance_km(AsId s, AsId m, AsId d) const;

  /// The same facility-minimizing geodistance with explicit candidate
  /// facility sets for the two hops (city ids in the model's world),
  /// instead of the graph's stored link facilities. This is how what-if
  /// layers price paths over links that do not exist in the base graph:
  /// estimate facilities for the hypothetical link (e.g. with
  /// topology::estimate_link_facilities) and evaluate here. Requires both
  /// sets non-empty and s/d to carry geodata; hops need not be base
  /// links.
  [[nodiscard]] double path_geodistance_km(
      AsId s, AsId m, AsId d, std::span<const std::size_t> facilities_sm,
      std::span<const std::size_t> facilities_md) const;

 private:
  [[nodiscard]] double as_to_city_km(AsId as, std::size_t city) const;
  [[nodiscard]] double city_to_city_km(std::size_t a, std::size_t b) const;

  const Graph* graph_;
  const geo::World* world_;
  /// Dense city-to-city distance matrix (city counts are small).
  std::vector<double> city_matrix_;
  std::size_t num_cities_;
};

/// Per-AS-pair result of the geodistance comparison (Fig. 5a/5b).
struct GeoPairResult {
  std::size_t ma_paths_below_grc_max = 0;
  std::size_t ma_paths_below_grc_median = 0;
  std::size_t ma_paths_below_grc_min = 0;
  /// Relative reduction of the minimum geodistance (0 if not improved).
  double relative_reduction = 0.0;
};

struct GeodistanceReport {
  /// One entry per analyzed AS pair connected by >= 1 GRC length-3 path.
  std::vector<GeoPairResult> pairs;
};

/// Runs the §VI-B comparison for all pairs (src in `sources`, dst with at
/// least one GRC length-3 path from src).
[[nodiscard]] GeodistanceReport analyze_geodistance(
    const Graph& graph, const geo::World& world,
    const std::vector<AsId>& sources);

}  // namespace panagree::diversity
