#include "panagree/geo/region.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "panagree/util/error.hpp"

namespace panagree::geo {

World World::make_default(util::Rng& rng, std::size_t cities_per_region) {
  util::require(cities_per_region > 0,
                "World::make_default: need at least one city per region");
  World world;
  world.regions_ = {
      {"north-america", {40.0, -100.0}, 2500.0, {}},
      {"south-america", {-15.0, -60.0}, 2200.0, {}},
      {"europe", {50.0, 10.0}, 1600.0, {}},
      {"asia", {30.0, 105.0}, 3000.0, {}},
      {"oceania", {-25.0, 135.0}, 2000.0, {}},
  };
  for (std::size_t r = 0; r < world.regions_.size(); ++r) {
    Region& region = world.regions_[r];
    for (std::size_t c = 0; c < cities_per_region; ++c) {
      // Scatter around the region center; convert the km radius to rough
      // degree offsets (1 deg latitude ~ 111 km).
      const double radius_deg = region.radius_km / 111.0;
      const double lat_offset = rng.normal(0.0, radius_deg / 2.5);
      const double cos_lat =
          std::max(0.2, std::cos(region.center.lat_deg * std::numbers::pi / 180.0));
      const double lng_offset = rng.normal(0.0, radius_deg / (2.5 * cos_lat));
      LatLng where{region.center.lat_deg + lat_offset,
                   region.center.lng_deg + lng_offset};
      where.lat_deg = std::clamp(where.lat_deg, -85.0, 85.0);
      if (where.lng_deg > 180.0) {
        where.lng_deg -= 360.0;
      } else if (where.lng_deg < -180.0) {
        where.lng_deg += 360.0;
      }
      const std::size_t id = world.cities_.size();
      world.cities_.push_back(
          City{region.name + "-" + std::to_string(c), where, r});
      region.city_ids.push_back(id);
    }
  }
  return world;
}

World World::restore(std::vector<Region> regions, std::vector<City> cities) {
  for (const City& city : cities) {
    util::require(city.region < regions.size(),
                  "World::restore: city region out of range");
  }
  for (const Region& region : regions) {
    for (const std::size_t id : region.city_ids) {
      util::require(id < cities.size(),
                    "World::restore: region city id out of range");
    }
  }
  World world;
  world.regions_ = std::move(regions);
  world.cities_ = std::move(cities);
  return world;
}

const City& World::city(std::size_t id) const {
  util::require(id < cities_.size(), "World::city: id out of range");
  return cities_[id];
}

std::size_t World::sample_city(std::size_t region, util::Rng& rng) const {
  util::require(region < regions_.size(), "World::sample_city: bad region");
  const auto& pool = regions_[region].city_ids;
  PANAGREE_ASSERT(!pool.empty());
  return pool[rng.uniform_index(pool.size())];
}

std::size_t World::sample_region(util::Rng& rng,
                                 const std::vector<double>& weights) const {
  if (weights.empty()) {
    return rng.uniform_index(regions_.size());
  }
  util::require(weights.size() == regions_.size(),
                "World::sample_region: one weight per region required");
  return rng.weighted_index(weights);
}

}  // namespace panagree::geo
