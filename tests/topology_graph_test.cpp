#include <gtest/gtest.h>

#include <algorithm>

#include "panagree/topology/examples.hpp"
#include "panagree/topology/graph.hpp"

namespace panagree::topology {
namespace {

TEST(Graph, AddAsAssignsSequentialIds) {
  Graph g;
  EXPECT_EQ(g.add_as(), 0u);
  EXPECT_EQ(g.add_as(), 1u);
  EXPECT_EQ(g.num_ases(), 2u);
}

TEST(Graph, DefaultNamesAreStable) {
  Graph g;
  const AsId a = g.add_as();
  EXPECT_EQ(g.info(a).name, "AS0");
  EXPECT_EQ(g.find_by_name("AS0"), a);
}

TEST(Graph, RejectsDuplicateNames) {
  Graph g;
  g.add_as("x");
  EXPECT_THROW(g.add_as("x"), util::PreconditionError);
}

TEST(Graph, ProviderCustomerPopulatesNeighborSets) {
  Graph g;
  const AsId p = g.add_as("p");
  const AsId c = g.add_as("c");
  g.add_provider_customer(p, c);
  ASSERT_EQ(g.customers(p).size(), 1u);
  EXPECT_EQ(g.customers(p)[0], c);
  ASSERT_EQ(g.providers(c).size(), 1u);
  EXPECT_EQ(g.providers(c)[0], p);
  EXPECT_TRUE(g.peers(p).empty());
}

TEST(Graph, PeeringIsSymmetric) {
  Graph g;
  const AsId a = g.add_as();
  const AsId b = g.add_as();
  g.add_peering(a, b);
  EXPECT_TRUE(g.are_peers(a, b));
  EXPECT_TRUE(g.are_peers(b, a));
}

TEST(Graph, RejectsSelfLoops) {
  Graph g;
  const AsId a = g.add_as();
  EXPECT_THROW(g.add_peering(a, a), util::PreconditionError);
  EXPECT_THROW(g.add_provider_customer(a, a), util::PreconditionError);
}

TEST(Graph, RejectsSecondRelationshipPerPair) {
  Graph g;
  const AsId a = g.add_as();
  const AsId b = g.add_as();
  g.add_provider_customer(a, b);
  EXPECT_THROW(g.add_peering(a, b), util::PreconditionError);
  EXPECT_THROW(g.add_provider_customer(b, a), util::PreconditionError);
}

TEST(Graph, RoleOfReportsBothPerspectives) {
  Graph g;
  const AsId p = g.add_as();
  const AsId c = g.add_as();
  g.add_provider_customer(p, c);
  EXPECT_EQ(g.role_of(c, p), NeighborRole::kProvider);
  EXPECT_EQ(g.role_of(p, c), NeighborRole::kCustomer);
  EXPECT_FALSE(g.role_of(p, p).has_value());
}

TEST(Graph, LinkBetweenFindsEitherDirection) {
  Graph g;
  const AsId a = g.add_as();
  const AsId b = g.add_as();
  const LinkId id = g.add_provider_customer(a, b);
  EXPECT_EQ(g.link_between(a, b), id);
  EXPECT_EQ(g.link_between(b, a), id);
  EXPECT_FALSE(g.link_between(a, a).has_value());
}

TEST(Graph, LinkOtherEndpoint) {
  Graph g;
  const AsId a = g.add_as();
  const AsId b = g.add_as();
  const LinkId id = g.add_peering(a, b);
  EXPECT_EQ(g.link(id).other(a), b);
  EXPECT_EQ(g.link(id).other(b), a);
}

TEST(Graph, DegreeCountsAllRoles) {
  Graph g;
  const AsId x = g.add_as();
  const AsId p = g.add_as();
  const AsId q = g.add_as();
  const AsId c = g.add_as();
  g.add_provider_customer(p, x);
  g.add_peering(x, q);
  g.add_provider_customer(x, c);
  EXPECT_EQ(g.degree(x), 3u);
  const auto n = g.neighbors(x);
  EXPECT_EQ(n.size(), 3u);
  EXPECT_NE(std::find(n.begin(), n.end(), p), n.end());
  EXPECT_NE(std::find(n.begin(), n.end(), q), n.end());
  EXPECT_NE(std::find(n.begin(), n.end(), c), n.end());
}

TEST(Graph, ProviderHierarchyAcyclicOnChains) {
  Graph g;
  const AsId a = g.add_as();
  const AsId b = g.add_as();
  const AsId c = g.add_as();
  g.add_provider_customer(a, b);
  g.add_provider_customer(b, c);
  EXPECT_TRUE(g.provider_hierarchy_is_acyclic());
}

TEST(Graph, ProviderHierarchyDetectsCycle) {
  Graph g;
  const AsId a = g.add_as();
  const AsId b = g.add_as();
  const AsId c = g.add_as();
  g.add_provider_customer(a, b);
  g.add_provider_customer(b, c);
  g.add_provider_customer(c, a);
  EXPECT_FALSE(g.provider_hierarchy_is_acyclic());
}

TEST(Graph, ConnectivityDetection) {
  Graph g;
  const AsId a = g.add_as();
  const AsId b = g.add_as();
  const AsId c = g.add_as();
  g.add_peering(a, b);
  EXPECT_FALSE(g.is_connected());
  g.add_peering(b, c);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, EmptyGraphIsConnected) {
  const Graph g;
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, CustomerConeIncludesSelfAndTransitives) {
  Graph g;
  const AsId a = g.add_as();
  const AsId b = g.add_as();
  const AsId c = g.add_as();
  const AsId d = g.add_as();
  g.add_provider_customer(a, b);
  g.add_provider_customer(b, c);
  g.add_peering(a, d);
  const auto cone = customer_cone(g, a);
  EXPECT_EQ(cone, (std::vector<AsId>{a, b, c}));
}

TEST(Graph, CustomerConeOfStubIsItself) {
  Graph g;
  const AsId a = g.add_as();
  const AsId b = g.add_as();
  g.add_provider_customer(a, b);
  EXPECT_EQ(customer_cone(g, b), std::vector<AsId>{b});
}

// ------------------------------------------------------ example topologies

TEST(Fig1, MatchesThePaperStructure) {
  const Fig1 t = make_fig1();
  const Graph& g = t.graph;
  EXPECT_EQ(g.num_ases(), 9u);
  // Peerings of the figure.
  EXPECT_TRUE(g.are_peers(t.A, t.B));
  EXPECT_TRUE(g.are_peers(t.C, t.D));
  EXPECT_TRUE(g.are_peers(t.D, t.E));
  EXPECT_TRUE(g.are_peers(t.E, t.F));
  EXPECT_TRUE(g.are_peers(t.F, t.G));
  // Provider->customer links referenced in the text.
  EXPECT_TRUE(g.is_provider_of(t.A, t.D));
  EXPECT_TRUE(g.is_provider_of(t.B, t.E));
  EXPECT_TRUE(g.is_provider_of(t.D, t.H));
  EXPECT_TRUE(g.is_provider_of(t.E, t.I));
  EXPECT_TRUE(g.provider_hierarchy_is_acyclic());
  EXPECT_TRUE(g.is_connected());
}

TEST(Fig1, DAndEArePureTransitASesForTheExample) {
  const Fig1 t = make_fig1();
  // D's customers: H. E's customers: I (the peering example of §III-B1).
  EXPECT_EQ(t.graph.customers(t.D), std::vector<AsId>{t.H});
  EXPECT_EQ(t.graph.customers(t.E), std::vector<AsId>{t.I});
}

TEST(Diamond, HasExpectedShape) {
  const Diamond t = make_diamond();
  EXPECT_TRUE(t.graph.is_provider_of(t.P, t.X));
  EXPECT_TRUE(t.graph.is_provider_of(t.P, t.Y));
  EXPECT_TRUE(t.graph.are_peers(t.X, t.Y));
  EXPECT_TRUE(t.graph.is_provider_of(t.X, t.CX));
  EXPECT_TRUE(t.graph.is_provider_of(t.Y, t.CY));
  EXPECT_TRUE(t.graph.provider_hierarchy_is_acyclic());
}

TEST(ToString, RolesAndLinkTypes) {
  EXPECT_STREQ(to_string(NeighborRole::kProvider), "provider");
  EXPECT_STREQ(to_string(NeighborRole::kPeer), "peer");
  EXPECT_STREQ(to_string(NeighborRole::kCustomer), "customer");
  EXPECT_STREQ(to_string(LinkType::kPeering), "peering");
  EXPECT_STREQ(to_string(LinkType::kProviderCustomer), "provider-customer");
}

}  // namespace
}  // namespace panagree::topology
