// Optimization via flow-volume targets (§IV-A, Eq. 9).
//
// Decision variables per new agreement segment P: the rerouted existing
// traffic r_P (bounded by what actually flows toward that destination via
// providers today) and the newly attracted customer traffic n_P (bounded by
// the demand limit Delta-f^max_P, constraint III). The segment's total
// allowance written into the agreement is f_P = r_P + n_P, which makes
// constraint II hold by construction. Constraint I (non-negative utility
// for both parties) is enforced on the Nash-product objective; utilities
// come from the full economic model via AgreementEvaluator.
#pragma once

#include <vector>

#include "panagree/core/agreements/utility.hpp"
#include "panagree/core/bargain/optimizers.hpp"

namespace panagree::bargain {

using agreements::AgreementEvaluator;
using agreements::AsId;

/// One optimizable agreement segment for one party.
struct SegmentOption {
  /// The new path the party's traffic would take (party, partner, Z, ...).
  std::vector<AsId> new_path;
  /// The path this traffic uses today (same endpoints; via a provider).
  std::vector<AsId> old_path;
  /// Existing traffic volume on old_path that could be rerouted.
  double reroutable = 0.0;
  /// Delta-f^max_P: demand limit for newly attracted traffic (constr. III).
  double max_new_demand = 0.0;
};

struct FlowVolumeProblem {
  AsId party_x = topology::kInvalidAs;
  AsId party_y = topology::kInvalidAs;
  std::vector<SegmentOption> x_segments;  ///< segments used by X (via Y)
  std::vector<SegmentOption> y_segments;  ///< segments used by Y (via X)
};

/// One concluded flow-volume target (the f^(a)_P entries of the contract).
struct FlowVolumeTarget {
  std::vector<AsId> segment;
  double allowance = 0.0;   ///< f_P = rerouted + new
  double rerouted = 0.0;    ///< r_P
  double new_demand = 0.0;  ///< n_P (attracted customer traffic)
};

struct FlowVolumeSolution {
  bool concluded = false;  ///< some target is positive and N > 0
  double u_x = 0.0;
  double u_y = 0.0;
  double nash = 0.0;
  std::vector<FlowVolumeTarget> x_targets;
  std::vector<FlowVolumeTarget> y_targets;
};

struct FlowVolumeSolverOptions {
  std::size_t random_starts = 6;
  std::uint64_t seed = 7;
  NelderMeadOptions nelder_mead;
  /// Feasibility slack on the utility constraints.
  double epsilon = 1e-9;
};

/// Solves Eq. (9) for the given problem. The evaluator supplies the base
/// traffic and economy against which utility changes are measured.
[[nodiscard]] FlowVolumeSolution solve_flow_volume(
    const FlowVolumeProblem& problem, const AgreementEvaluator& evaluator,
    const FlowVolumeSolverOptions& options = {});

/// Builds the TrafficShift corresponding to a (possibly intermediate)
/// variable vector; exposed for tests.
[[nodiscard]] agreements::TrafficShift shift_for_variables(
    const FlowVolumeProblem& problem, const std::vector<double>& variables);

}  // namespace panagree::bargain
