// Per-source sharded parallel driver for path enumeration.
//
// Every large-scale analysis in this repo fans out over independent source
// ASes (SPP compilation per node, diversity counts per sampled AS). The
// driver runs a per-source function over a std::thread pool and collects
// results *in source order*: workers claim source indices from an atomic
// cursor (dynamic load balancing - per-source costs are heavy-tailed), and
// each result lands in its source's preallocated slot. The merged output is
// therefore byte-identical for every thread count, including 1; parallelism
// never changes results, only wall-clock time.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "panagree/topology/graph.hpp"

namespace panagree::paths {

/// Resolves a requested worker count: 0 means "use the hardware", anything
/// else is taken literally. Always >= 1.
[[nodiscard]] std::size_t resolve_thread_count(std::size_t requested);

/// Below this many sources the driver runs serially regardless of the
/// requested worker count: thread spawn/join overhead dwarfs tiny
/// workloads, and results are identical either way.
inline constexpr std::size_t kMinParallelSources = 32;

/// Runs `fn(i)` for every index in [0, count) and returns the results in
/// index order. The generic core of the per-source driver - also the
/// fan-out for any other independent unit of work (the deployment
/// optimizer maps over *candidate scenarios* with it). `fn` must be
/// callable concurrently from multiple threads; its result type must be
/// default-constructible and movable. The first exception thrown by any
/// invocation is rethrown on the calling thread after all workers have
/// drained. `min_parallel` is the workload size below which the driver
/// stays serial - keep the default for cheap per-source units, lower it
/// when each unit is itself a heavy batch.
template <typename Fn>
[[nodiscard]] auto map_indices(std::size_t count, std::size_t threads,
                               Fn&& fn,
                               std::size_t min_parallel = kMinParallelSources)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  // std::vector<bool> packs bits: concurrent writes to distinct indices
  // would race on shared bytes. Return char/int instead.
  static_assert(!std::is_same_v<Result, bool>,
                "map_indices: bool results are not thread-safe "
                "(vector<bool> packs bits)");
  std::vector<Result> results(count);
  const std::size_t workers = std::min(resolve_thread_count(threads), count);
  if (workers <= 1 || count < min_parallel) {
    for (std::size_t i = 0; i < count; ++i) {
      results[i] = fn(i);
    }
    return results;
  }

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  const auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      try {
        results[i] = fn(i);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) {
          error = std::current_exception();
        }
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  try {
    for (std::size_t t = 0; t < workers; ++t) {
      pool.emplace_back(worker);
    }
  } catch (...) {
    // Thread creation failed (resource pressure): drain the workers that
    // did start, then let the error propagate - never terminate().
    failed.store(true, std::memory_order_relaxed);
    for (std::thread& t : pool) {
      t.join();
    }
    throw;
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (error) {
    std::rethrow_exception(error);
  }
  return results;
}

/// Runs `fn(sources[i])` for every i and returns the results in source
/// order (see map_indices for the concurrency contract).
template <typename Fn>
[[nodiscard]] auto map_sources(const std::vector<topology::AsId>& sources,
                               std::size_t threads, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, topology::AsId>> {
  return map_indices(sources.size(), threads,
                     [&](std::size_t i) { return fn(sources[i]); });
}

}  // namespace panagree::paths
