#include "panagree/util/rng.hpp"

#include <cmath>
#include <numbers>

namespace panagree::util {

double Rng::normal(double mean, double stddev) {
  require(stddev >= 0.0, "Rng::normal: stddev must be non-negative");
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * radius * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::exponential(double rate) {
  require(rate > 0.0, "Rng::exponential: rate must be positive");
  double u = uniform();
  while (u <= 0.0) {
    u = uniform();
  }
  return -std::log(u) / rate;
}

double Rng::pareto(double alpha, double x_min) {
  require(alpha > 0.0, "Rng::pareto: alpha must be positive");
  require(x_min > 0.0, "Rng::pareto: x_min must be positive");
  double u = uniform();
  while (u <= 0.0) {
    u = uniform();
  }
  return x_min / std::pow(u, 1.0 / alpha);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  require(k <= n, "Rng::sample_without_replacement: k must not exceed n");
  // Partial Fisher–Yates over an index vector; O(n) memory, O(n + k) time.
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) {
    indices[i] = i;
  }
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_index(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  require(!weights.empty(), "Rng::weighted_index: weights must be non-empty");
  double total = 0.0;
  for (const double w : weights) {
    require(w >= 0.0, "Rng::weighted_index: weights must be non-negative");
    total += w;
  }
  require(total > 0.0, "Rng::weighted_index: at least one weight must be > 0");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;  // floating-point slack: last positive weight
}

}  // namespace panagree::util
