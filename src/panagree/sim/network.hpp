// Packet-level network simulation of PAN forwarding over the AS graph.
//
// Links get propagation latency (from facility geodistance when available)
// and serialization capacity; packets follow their embedded forwarding path
// through per-direction FIFO links. Delivery records expose end-to-end
// latency and the traversed trace, used by examples and integration tests
// to demonstrate loop-free GRC-violating forwarding (§II).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "panagree/geo/region.hpp"
#include "panagree/pan/forwarding.hpp"
#include "panagree/sim/engine.hpp"
#include "panagree/topology/graph.hpp"

namespace panagree::sim {

using topology::AsId;
using topology::Graph;

struct NetworkParams {
  /// Propagation speed as a fraction of c (fibre ~ 2/3 c).
  double propagation_fraction_of_c = 0.67;
  /// Latency floor per hop (processing/queueing), seconds.
  double per_hop_overhead_s = 0.0005;
  /// Capacity in bits/s for a link with capacity attribute 1.0.
  double bits_per_capacity_unit = 1e9;
  /// Fallback latency when no geodata is available, seconds.
  double default_link_latency_s = 0.005;
};

struct DeliveryRecord {
  bool delivered = false;
  pan::DropReason drop_reason = pan::DropReason::kNone;
  SimTime sent_at = 0.0;
  SimTime delivered_at = 0.0;
  std::vector<AsId> trace;

  [[nodiscard]] SimTime latency() const { return delivered_at - sent_at; }
};

class Network {
 public:
  /// Builds the network; if `world` is non-null, link latency derives from
  /// the great-circle distance between the endpoint AS centroids via their
  /// first shared facility.
  Network(const Graph& graph, const pan::KeyStore& keys,
          const geo::World* world = nullptr, NetworkParams params = {});

  /// Injects a packet of `size_bits` with the given forwarding path at the
  /// current simulation time; the index of its (future) delivery record is
  /// returned immediately.
  std::size_t send_packet(const pan::ForwardingPath& path, double size_bits);

  /// The shared event engine (run it to completion to flush deliveries).
  [[nodiscard]] Engine& engine() { return engine_; }

  [[nodiscard]] const std::vector<DeliveryRecord>& deliveries() const {
    return records_;
  }

  /// Propagation + serialization latency of the link x-y for a packet of
  /// `size_bits` (no queueing).
  [[nodiscard]] double link_latency_s(AsId x, AsId y, double size_bits) const;

 private:
  struct DirectedLinkState {
    SimTime busy_until = 0.0;
  };

  void hop(std::size_t record, const pan::ForwardingPath& path,
           std::size_t index, double size_bits);
  std::uint64_t directed_key(AsId from, AsId to) const;

  const Graph* graph_;
  const pan::KeyStore* keys_;
  pan::ForwardingEngine validator_;
  NetworkParams params_;
  Engine engine_;
  std::vector<DeliveryRecord> records_;
  std::unordered_map<std::uint64_t, double> latency_cache_;
  std::unordered_map<std::uint64_t, DirectedLinkState> link_state_;
};

}  // namespace panagree::sim
