// Tests for the SIMD role-filter pass: the dispatched kernel (AVX2/SSE2)
// must match the scalar golden reference bit for bit on arbitrary rows
// and masks, CompiledTopology's derived role lane must mirror its entry
// array, and - the end-to-end property - the role-filtered DFS must
// enumerate exactly the same paths in the same order as the unfiltered
// one for every shipped policy. scenario::Overlay has no role lane, so
// an *empty* overlay over the same snapshot runs the generic DFS and
// serves as the unfiltered oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "panagree/paths/enumerator.hpp"
#include "panagree/paths/role_filter.hpp"
#include "panagree/scenario/overlay.hpp"
#include "panagree/topology/compiled.hpp"
#include "panagree/topology/generator.hpp"

namespace panagree::paths {
namespace {

using topology::AsId;
using topology::CompiledTopology;
using topology::NeighborRole;

/// Deterministic role sequence (values 0..2, like a real role lane).
std::vector<std::uint8_t> random_roles(std::size_t count,
                                       std::uint64_t seed) {
  std::vector<std::uint8_t> roles(count);
  std::uint64_t state = seed * 2654435761ULL + 1;
  for (std::size_t i = 0; i < count; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    roles[i] = static_cast<std::uint8_t>((state >> 33) % 3);
  }
  return roles;
}

TEST(RoleFilter, ScalarMatchesHandComputed) {
  // provider, peer, customer, customer, peer, provider
  const std::vector<std::uint8_t> roles = {0, 1, 2, 2, 1, 0};
  std::vector<std::uint32_t> out(roles.size());

  std::size_t n =
      filter_roles_scalar(roles.data(), roles.size(), kCustomerBit,
                          out.data());
  ASSERT_EQ(n, 2U);
  EXPECT_EQ(out[0], 2U);
  EXPECT_EQ(out[1], 3U);

  n = filter_roles_scalar(roles.data(), roles.size(),
                          kProviderBit | kPeerBit, out.data());
  ASSERT_EQ(n, 4U);
  EXPECT_EQ(out[0], 0U);
  EXPECT_EQ(out[1], 1U);
  EXPECT_EQ(out[2], 4U);
  EXPECT_EQ(out[3], 5U);

  EXPECT_EQ(filter_roles_scalar(roles.data(), roles.size(), kNoRoles,
                                out.data()),
            0U);
  n = filter_roles_scalar(roles.data(), roles.size(), kAllRoles, out.data());
  ASSERT_EQ(n, roles.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], i);
  }
}

TEST(RoleFilter, DispatchedMatchesScalarOnRandomRows) {
  // Sizes straddling the 16-byte (SSE2) and 32-byte (AVX2) vector widths
  // plus their remainder tails, and a large row; every one of the 8 masks.
  const std::size_t sizes[] = {0,  1,  2,  15, 16, 17, 31, 32,
                               33, 47, 63, 64, 65, 100, 4096};
  for (const std::size_t count : sizes) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const auto roles = random_roles(count, seed * 97 + count);
      for (int mask = 0; mask <= kAllRoles; ++mask) {
        std::vector<std::uint32_t> expect(count + 1, 0xdeadbeef);
        std::vector<std::uint32_t> got(count + 1, 0xdeadbeef);
        const std::size_t n_expect =
            filter_roles_scalar(roles.data(), count,
                                static_cast<RoleMask>(mask), expect.data());
        const std::size_t n_got = filter_roles(
            roles.data(), count, static_cast<RoleMask>(mask), got.data());
        ASSERT_EQ(n_got, n_expect)
            << "count=" << count << " mask=" << mask << " seed=" << seed
            << " kernel=" << role_filter_dispatch();
        for (std::size_t i = 0; i < n_expect; ++i) {
          ASSERT_EQ(got[i], expect[i])
              << "count=" << count << " mask=" << mask << " index=" << i
              << " kernel=" << role_filter_dispatch();
        }
        // Nothing written past the reported count.
        EXPECT_EQ(got[n_got], 0xdeadbeefU);
      }
    }
  }
}

TEST(RoleFilter, DispatchNameIsKnown) {
  const std::string name = role_filter_dispatch();
  EXPECT_TRUE(name == "avx2" || name == "sse2" || name == "scalar") << name;
  // The selection is made once per process and must be stable.
  EXPECT_STREQ(role_filter_dispatch(), name.c_str());
}

TEST(RoleFilter, CompiledRoleLaneMirrorsEntryArray) {
  const auto generated = topology::generate_internet([] {
    topology::GeneratorParams params;
    params.num_ases = 400;
    params.tier1_count = 5;
    params.seed = 11;
    return params;
  }());
  const CompiledTopology compiled(generated.graph);
  for (AsId as = 0; as < compiled.num_ases(); ++as) {
    const auto row = compiled.entries(as);
    const std::uint8_t* lane = compiled.role_lane(as);
    for (std::size_t i = 0; i < row.size(); ++i) {
      ASSERT_EQ(lane[i], static_cast<std::uint8_t>(row[i].role))
          << "as=" << as << " i=" << i;
    }
  }
  // The borrow path (what a mmap'd snapshot takes) must derive the same
  // lane from the same entry bytes.
  const CompiledTopology borrowed = CompiledTopology::borrow(
      generated.graph, compiled.row_start_array(),
      compiled.providers_end_array(), compiled.peers_end_array(),
      compiled.entry_array());
  ASSERT_EQ(borrowed.role_lane_array().size(),
            compiled.role_lane_array().size());
  EXPECT_EQ(std::memcmp(borrowed.role_lane_array().data(),
                        compiled.role_lane_array().data(),
                        compiled.role_lane_array().size()),
            0);
}

/// Collects every policy-admitted path from `src` through `enumerator`.
template <typename Topo, typename Policy>
std::vector<Path> collect(const BasicPathEnumerator<Topo>& enumerator,
                          AsId src, std::size_t max_len,
                          const Policy& policy) {
  std::vector<Path> out;
  enumerator.visit_paths(src, max_len, policy, [&](const Path& path) {
    out.push_back(path);
    return true;
  });
  return out;
}

// The end-to-end contract from the header: with and without the role
// filter, the DFS enumerates the same paths in the same order. The
// CompiledTopology enumerator runs the filtered path (role lane +
// admissible_roles); an empty Overlay over the same snapshot has no role
// lane and runs the generic row scan.
TEST(RoleFilter, FilteredDfsMatchesUnfilteredAcrossPolicies) {
  const auto generated = topology::generate_internet([] {
    topology::GeneratorParams params;
    params.num_ases = 300;
    params.tier1_count = 4;
    params.seed = 23;
    return params;
  }());
  const CompiledTopology compiled(generated.graph);
  const scenario::Overlay overlay(compiled);  // empty: same adjacency
  const BasicPathEnumerator<CompiledTopology> filtered(compiled);
  const BasicPathEnumerator<scenario::Overlay> unfiltered(overlay);

  // A peer pair for the mutual-transit policy: find one peering link.
  std::vector<std::pair<AsId, AsId>> mutual;
  for (AsId as = 0; as < compiled.num_ases() && mutual.empty(); ++as) {
    for (const auto& entry : compiled.entries(as)) {
      if (entry.role == NeighborRole::kPeer) {
        mutual.emplace_back(as, entry.neighbor);
        break;
      }
    }
  }
  ASSERT_FALSE(mutual.empty()) << "generator produced no peering links";
  const MutualTransitStep mutual_transit(mutual);
  const BasicMaLength3Step<CompiledTopology> ma_direct(compiled, false);
  const BasicMaLength3Step<scenario::Overlay> ma_direct_ov(overlay, false);
  const BasicMaLength3Step<CompiledTopology> ma_indirect(compiled, true);
  const BasicMaLength3Step<scenario::Overlay> ma_indirect_ov(overlay, true);

  for (AsId src = 0; src < compiled.num_ases(); src += 7) {
    ASSERT_EQ(collect(filtered, src, 4, ValleyFreeStep{}),
              collect(unfiltered, src, 4, ValleyFreeStep{}))
        << "valley-free, src=" << src;
    ASSERT_EQ(collect(filtered, src, 4, mutual_transit),
              collect(unfiltered, src, 4, mutual_transit))
        << "mutual-transit, src=" << src;
    ASSERT_EQ(collect(filtered, src, 3, ma_direct),
              collect(unfiltered, src, 3, ma_direct_ov))
        << "ma-direct, src=" << src;
    ASSERT_EQ(collect(filtered, src, 3, ma_indirect),
              collect(unfiltered, src, 3, ma_indirect_ov))
        << "ma-indirect, src=" << src;
  }
}

}  // namespace
}  // namespace panagree::paths
