// Extended property and failure-injection tests across module boundaries:
// things a downstream user would hit that the per-module suites don't
// exercise - broken links in the data plane, mixed utility-distribution
// negotiations, CAIDA round-trips of generated topologies, and end-to-end
// economic consistency of the fluid simulator.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

#include "panagree/bgp/gadgets.hpp"
#include "panagree/bgp/simulator.hpp"
#include "panagree/core/bosco/service.hpp"
#include "panagree/diversity/report.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/pan/beaconing.hpp"
#include "panagree/pan/forwarding.hpp"
#include "panagree/pan/path_construction.hpp"
#include "panagree/sim/flow_assignment.hpp"
#include "panagree/sim/network.hpp"
#include "panagree/topology/caida.hpp"
#include "panagree/topology/capacity.hpp"
#include "panagree/topology/examples.hpp"
#include "panagree/topology/generator.hpp"

namespace panagree {
namespace {

// ------------------------------------------------- data-plane failure paths

TEST(FailureInjection, ForwardingAcrossNonLinkIsBrokenLink) {
  const auto t = topology::make_fig1();
  const pan::KeyStore keys(1, t.graph.num_ases());
  const pan::ForwardingEngine engine(t.graph, keys);
  // H and I are not adjacent; the header is correctly MACed but the
  // topology cannot carry it.
  const auto fp = pan::issue_path(keys, {t.H, t.I});
  const auto result = engine.forward(fp);
  EXPECT_FALSE(result.delivered);
  EXPECT_EQ(result.reason, pan::DropReason::kBrokenLink);
  EXPECT_EQ(result.trace, (std::vector<topology::AsId>{t.H}));
}

TEST(FailureInjection, NetworkDropsBrokenLinkPackets) {
  auto t = topology::make_fig1();
  const pan::KeyStore keys(2, t.graph.num_ases());
  sim::Network net(t.graph, keys);
  const auto id = net.send_packet(pan::issue_path(keys, {t.C, t.G}), 100.0);
  net.engine().run();
  EXPECT_FALSE(net.deliveries().at(id).delivered);
  EXPECT_EQ(net.deliveries().at(id).drop_reason,
            pan::DropReason::kBrokenLink);
}

TEST(FailureInjection, WrongKeyStoreRejectsForeignPaths) {
  const auto t = topology::make_fig1();
  const pan::KeyStore issuer(3, t.graph.num_ases());
  const pan::KeyStore verifier(4, t.graph.num_ases());
  const pan::ForwardingEngine engine(t.graph, verifier);
  const auto result = engine.forward(pan::issue_path(issuer, {t.H, t.D, t.A}));
  EXPECT_FALSE(result.delivered);
  EXPECT_EQ(result.reason, pan::DropReason::kInvalidMac);
}

// ----------------------------------------- CAIDA round trip of a generated
// topology: the exporter/parser must preserve the full relationship graph.

TEST(CaidaRoundTrip, GeneratedTopologySurvives) {
  topology::GeneratorParams params;
  params.num_ases = 400;
  params.tier1_count = 4;
  params.seed = 77;
  const auto topo = topology::generate_internet(params);

  std::ostringstream out;
  topology::caida::write(topo.graph, out);
  std::istringstream in(out.str());
  const auto parsed = topology::caida::parse(in);

  EXPECT_EQ(parsed.graph.num_ases(), topo.graph.num_ases());
  EXPECT_EQ(parsed.graph.num_links(), topo.graph.num_links());
  // Every original relationship must exist with the same orientation.
  for (const topology::Link& link : topo.graph.links()) {
    const topology::AsId a = parsed.asn_to_id.at(link.a);
    const topology::AsId b = parsed.asn_to_id.at(link.b);
    if (link.type == topology::LinkType::kProviderCustomer) {
      EXPECT_TRUE(parsed.graph.is_provider_of(a, b));
    } else {
      EXPECT_TRUE(parsed.graph.are_peers(a, b));
    }
  }
}

// -------------------------------------------------- fluid-sim consistency

TEST(EndToEnd, FlowAssignmentMatchesHandComputedEconomy) {
  const auto t = topology::make_diamond();
  econ::Economy economy(t.graph);
  economy.set_link_pricing(t.P, t.X, econ::PricingFunction::per_unit(1.0));
  economy.set_link_pricing(t.P, t.Y, econ::PricingFunction::per_unit(1.0));
  economy.set_link_pricing(t.X, t.CX, econ::PricingFunction::per_unit(2.0));
  economy.set_link_pricing(t.Y, t.CY, econ::PricingFunction::per_unit(2.0));
  economy.set_internal_cost(t.X, econ::InternalCostFunction::linear(0.1));

  // CX <-> CY traffic: 6 units via the peering link, 4 via the provider.
  const sim::FlowAssignmentResult flows = sim::assign_flows(
      t.graph, {{{t.CX, t.X, t.Y, t.CY}, 6.0},
                {{t.CX, t.X, t.P, t.Y, t.CY}, 4.0}});
  // X: revenue 2 * 10 from CX; cost = internal 0.1 * 10 + provider 1 * 4.
  EXPECT_DOUBLE_EQ(economy.revenue(t.X, flows.allocation), 20.0);
  EXPECT_DOUBLE_EQ(economy.cost(t.X, flows.allocation), 5.0);
  EXPECT_DOUBLE_EQ(economy.utility(t.X, flows.allocation), 15.0);
  // The peering link carries 6, the X-P link 4.
  EXPECT_DOUBLE_EQ(flows.allocation.link_flow(t.X, t.Y), 6.0);
  EXPECT_DOUBLE_EQ(flows.allocation.link_flow(t.X, t.P), 4.0);
}

TEST(EndToEnd, GeoLatencyReflectsDistance) {
  // Two packets over links with very different geodesic lengths.
  topology::GeneratorParams params;
  params.num_ases = 300;
  params.tier1_count = 4;
  params.seed = 31;
  auto topo = topology::generate_internet(params);
  topology::assign_degree_gravity_capacities(topo.graph);
  const pan::KeyStore keys(5, topo.graph.num_ases());
  sim::Network net(topo.graph, keys, &topo.world);
  pan::BeaconService beacons(topo.graph);
  beacons.run();
  const pan::PathConstructor constructor(topo.graph, beacons);
  // Find any constructible path and check simulated latency exceeds the
  // lightspeed bound for its geodesic length.
  for (topology::AsId src = 0; src < topo.graph.num_ases(); ++src) {
    const auto paths =
        constructor.construct(src, topo.tier3.back() == src
                                       ? topo.tier3.front()
                                       : topo.tier3.back());
    if (paths.empty()) {
      continue;
    }
    const auto id = net.send_packet(pan::issue_path(keys, paths.front()), 1e4);
    net.engine().run();
    const auto& rec = net.deliveries().at(id);
    ASSERT_TRUE(rec.delivered);
    EXPECT_GT(rec.latency(), 0.0);
    EXPECT_LT(rec.latency(), 2.0);  // sanity: below 2 seconds
    return;
  }
  FAIL() << "no constructible path found";
}

// ---------------------------------------- BOSCO with mixed distributions

struct MixedCase {
  int kind_x;
  int kind_y;
  std::uint64_t seed;
};

std::unique_ptr<bosco::UtilityDistribution> make_mixed(int kind) {
  switch (kind) {
    case 0:
      return std::make_unique<bosco::UniformDistribution>(-1.0, 1.0);
    case 1:
      return std::make_unique<bosco::TriangularDistribution>(-0.8, 0.1, 1.2);
    default:
      return std::make_unique<bosco::TruncatedNormalDistribution>(0.3, 0.6,
                                                                  -1.0, 1.5);
  }
}

class MixedDistributionBosco : public ::testing::TestWithParam<MixedCase> {};

TEST_P(MixedDistributionBosco, TheoremsHoldAcrossDistributionFamilies) {
  const auto& param = GetParam();
  bosco::BoscoService service(
      make_mixed(param.kind_x), make_mixed(param.kind_y),
      bosco::BoscoServiceOptions{.trials = 6,
                                 .seed = param.seed,
                                 .equilibrium = {},
                                 .truthful_grid = 200});
  const auto info = service.configure(14);
  EXPECT_TRUE(info.converged);
  EXPECT_GE(info.pod, -1e-9);
  EXPECT_LE(info.pod, 1.0 + 1e-9);
  util::Rng rng(param.seed * 13 + 1);
  for (int i = 0; i < 500; ++i) {
    const double ux = service.dist_x().sample(rng);
    const double uy = service.dist_y().sample(rng);
    const auto out = bosco::BoscoService::execute(info, ux, uy);
    if (out.concluded) {
      EXPECT_GE(out.u_x_after, -1e-9);  // Theorem 1
      EXPECT_GE(out.u_y_after, -1e-9);
      EXPECT_GE(ux + uy, -1e-9);  // Theorem 2
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, MixedDistributionBosco,
    ::testing::Values(MixedCase{0, 1, 1}, MixedCase{1, 0, 2},
                      MixedCase{0, 2, 3}, MixedCase{2, 0, 4},
                      MixedCase{1, 2, 5}, MixedCase{2, 2, 6}));

// ------------------------------------ path construction candidate budgets

TEST(PathConstruction, MaxPathsBudgetIsRespected) {
  topology::GeneratorParams params;
  params.num_ases = 400;
  params.tier1_count = 4;
  params.seed = 41;
  const auto topo = topology::generate_internet(params);
  pan::BeaconService beacons(topo.graph);
  beacons.run();
  const pan::PathConstructor constructor(topo.graph, beacons,
                                         {.max_paths = 3,
                                          .max_path_length = 8});
  std::size_t checked = 0;
  for (topology::AsId src = 0; src < 30 && checked < 10; ++src) {
    for (topology::AsId dst = 30; dst < 60 && checked < 10; ++dst) {
      const auto paths = constructor.construct(src, dst);
      EXPECT_LE(paths.size(), 3u);
      for (const auto& p : paths) {
        EXPECT_LE(p.size(), 8u);
      }
      if (!paths.empty()) {
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

// --------------------------------- diversity pipeline on the Fig. 1 graph

TEST(DiversityPipeline, Fig1HandCheckedRows) {
  const auto t = topology::make_fig1();
  diversity::DiversityParams params;
  params.sample_sources = 100;  // > 9, so every AS is analyzed
  params.top_ns = {1};
  const auto report = diversity::analyze_path_diversity(t.graph, params);
  ASSERT_EQ(report.path_rows.size(), 9u);
  for (const auto& row : report.path_rows) {
    if (row.as == t.D) {
      EXPECT_DOUBLE_EQ(row.grc, 3.0);     // D-A-B, D-A-C, D-E-I
      EXPECT_DOUBLE_EQ(row.ma_star, 6.0); // + D-C-A, D-E-B, D-E-F
    }
    if (row.as == t.H) {
      EXPECT_DOUBLE_EQ(row.grc, 3.0);   // H-D-{A,C,E}
      EXPECT_DOUBLE_EQ(row.ma_all, 3.0);  // no peers/customers: no MA paths
    }
  }
}

// ------------------------------------------------ wedgie link-failure story

TEST(Wedgie, RecoveringFromFailureCanLandInTheOtherState) {
  // The §II worry: "seemingly benign topologies ... may easily reduce to
  // the BAD GADGET in case one network link fails". The wedgie's two stable
  // states mean that after failure + recovery, the system may settle in a
  // different state than before - we exhibit both reachable states.
  const auto instance = bgp::make_wedgie();
  const auto solutions = bgp::find_stable_solutions(instance);
  ASSERT_EQ(solutions.size(), 2u);
  const auto report = bgp::check_safety(instance, 80, 5);
  EXPECT_TRUE(report.always_converged);
  EXPECT_EQ(report.distinct_outcomes, 2u);  // both states actually reached
}

}  // namespace
}  // namespace panagree
