#include "panagree/scenario/metrics.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <unordered_map>

#include "panagree/geo/coordinates.hpp"
#include "panagree/paths/enumerator.hpp"
#include "panagree/topology/generator.hpp"

namespace panagree::scenario {

SourcePathSet enumerate_length3(const Overlay& overlay, AsId src) {
  const paths::BasicPathEnumerator<Overlay> enumerator(overlay);
  SourcePathSet out;
  enumerator.visit_paths(src, 3, paths::ValleyFreeStep{},
                         [&](const paths::Path& path) {
                           if (path.size() == 3) {
                             out.add_grc({path[0], path[1], path[2]});
                           }
                           return true;
                         });
  enumerator.visit_paths(src, 3,
                         paths::BasicMaLength3Step<Overlay>(overlay, true),
                         [&](const paths::Path& path) {
                           if (path.size() == 3) {
                             out.add_ma({path[0], path[1], path[2]});
                           }
                           return true;
                         });
  return out;
}

MetricsDelta subtract(const ScenarioMetrics& scenario,
                      const ScenarioMetrics& baseline) {
  MetricsDelta delta;
  delta.paths =
      static_cast<double>(scenario.grc_paths + scenario.ma_paths) -
      static_cast<double>(baseline.grc_paths + baseline.ma_paths);
  delta.pairs =
      static_cast<double>(scenario.grc_pairs + scenario.ma_extra_pairs) -
      static_cast<double>(baseline.grc_pairs + baseline.ma_extra_pairs);
  delta.mean_best_geodistance_km = scenario.mean_best_geodistance_km -
                                   baseline.mean_best_geodistance_km;
  delta.transit_fees = scenario.transit_fees - baseline.transit_fees;
  return delta;
}

double operator_utility(const MetricsDelta& delta,
                        const UtilityWeights& weights) {
  return -delta.transit_fees + weights.per_new_pair * delta.pairs -
         weights.per_km_regression * delta.mean_best_geodistance_km;
}

ScenarioMetrics finalize(const SourceContribution& total) {
  ScenarioMetrics metrics;
  metrics.grc_paths = total.grc_paths;
  metrics.ma_paths = total.ma_paths;
  metrics.grc_pairs = total.grc_pairs;
  metrics.ma_extra_pairs = total.ma_extra_pairs;
  metrics.transit_fees = total.transit_fees;
  if (total.km_pairs > 0) {
    metrics.mean_best_geodistance_km =
        total.km_sum / static_cast<double>(total.km_pairs);
  }
  return metrics;
}

DiversityCounts count_diversity(
    std::span<const SourcePathSet* const> results) {
  DiversityCounts out;
  // Reused across sources: per source, the sorted-unique destination lists
  // of the GRC set and the MA set decide pair membership.
  std::vector<AsId> grc_dsts;
  std::vector<AsId> ma_dsts;
  for (const SourcePathSet* result : results) {
    out.grc_paths += result->grc().size();
    out.ma_paths += result->ma().size();
    grc_dsts.clear();
    ma_dsts.clear();
    for (const diversity::Length3Path& path : result->grc()) {
      grc_dsts.push_back(path.dst);
    }
    for (const diversity::Length3Path& path : result->ma()) {
      ma_dsts.push_back(path.dst);
    }
    std::sort(grc_dsts.begin(), grc_dsts.end());
    grc_dsts.erase(std::unique(grc_dsts.begin(), grc_dsts.end()),
                   grc_dsts.end());
    std::sort(ma_dsts.begin(), ma_dsts.end());
    ma_dsts.erase(std::unique(ma_dsts.begin(), ma_dsts.end()),
                  ma_dsts.end());
    out.grc_pairs += grc_dsts.size();
    for (const AsId dst : ma_dsts) {
      if (!std::binary_search(grc_dsts.begin(), grc_dsts.end(), dst)) {
        ++out.ma_extra_pairs;
      }
    }
  }
  return out;
}

MetricsAggregator::MetricsAggregator(const CompiledTopology& base,
                                     const geo::World* world,
                                     const econ::Economy* economy)
    : base_(&base), world_(world), economy_(economy) {
  if (world_ != nullptr) {
    geodesy_.emplace(base.graph(), *world_);
  }
  // Estimated facilities of added links must not out-minimize real ones:
  // cap at the densest base link (falling back to the generator default
  // when the base graph stores no facilities at all).
  std::size_t max_stored = 0;
  for (const topology::Link& link : base.graph().links()) {
    max_stored = std::max(max_stored, link.facilities.size());
  }
  if (max_stored > 0) {
    max_estimated_facilities_ = max_stored;
  }
}

double MetricsAggregator::path_geodistance_km(const Overlay& overlay,
                                              AsId s, AsId m, AsId d) const {
  return path_geodistance_km(overlay, s, m, d, /*memo=*/nullptr);
}

double MetricsAggregator::path_geodistance_km(
    const Overlay& overlay, AsId s, AsId m, AsId d,
    std::unordered_map<std::uint32_t, std::vector<std::size_t>>* memo)
    const {
  util::require(geodesy_.has_value(),
                "MetricsAggregator: constructed without a geo::World");
  const auto l1 = overlay.link_between(s, m);
  const auto l2 = overlay.link_between(m, d);
  util::require(l1.has_value() && l2.has_value(),
                "path_geodistance_km: path hops must be linked");
  if (*l1 < overlay.first_added_link_id() &&
      *l2 < overlay.first_added_link_id()) {
    return geodesy_->path_geodistance_km(s, m, d);
  }
  // An added link stores no facilities yet: estimate candidates from the
  // endpoint PoP sets, the same rule the generator assigns real links
  // with, so the what-if hop is priced like its recompiled version. The
  // estimate depends only on the link, so Scratch callers memoize it per
  // synthetic link id instead of redoing the PoP search per path.
  const topology::Graph& graph = base_->graph();
  const auto estimate = [&](std::uint32_t link_id) {
    const LinkChange& change = overlay.added_link(link_id);
    topology::Link link;
    link.a = change.a;
    link.b = change.b;
    link.type = change.type;
    return topology::estimate_link_facilities(graph, *world_, link,
                                              max_estimated_facilities_);
  };
  // Stable storage for a non-memoized estimate of each hop.
  std::vector<std::size_t> local[2];
  const auto facilities_of =
      [&](std::uint32_t link_id,
          std::size_t hop) -> const std::vector<std::size_t>& {
    if (link_id < overlay.first_added_link_id()) {
      return graph.link(link_id).facilities;
    }
    if (memo != nullptr) {
      const auto [it, inserted] = memo->try_emplace(link_id);
      if (inserted) {
        it->second = estimate(link_id);
      }
      return it->second;
    }
    local[hop] = estimate(link_id);
    return local[hop];
  };
  const std::vector<std::size_t>& facilities_sm = facilities_of(*l1, 0);
  const std::vector<std::size_t>& facilities_md = facilities_of(*l2, 1);
  if (!facilities_sm.empty() && !facilities_md.empty()) {
    return geodesy_->path_geodistance_km(s, m, d, facilities_sm,
                                         facilities_md);
  }
  // Last resort - an endpoint without PoPs: endpoint-centroid legs.
  return geo::great_circle_km(graph.info(s).centroid,
                              graph.info(m).centroid) +
         geo::great_circle_km(graph.info(m).centroid,
                              graph.info(d).centroid);
}

double MetricsAggregator::path_fee(const Overlay& overlay,
                                   std::span<const AsId> path,
                                   double volume) const {
  double fee = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const std::optional<NeighborRole> role =
        overlay.role_of(path[i], path[i + 1]);
    PANAGREE_ASSERT(role.has_value());
    switch (*role) {
      case NeighborRole::kProvider:
        fee += economy_->link_pricing(path[i + 1], path[i])(volume);
        break;
      case NeighborRole::kCustomer:
        fee += economy_->link_pricing(path[i], path[i + 1])(volume);
        break;
      case NeighborRole::kPeer:
        break;
    }
  }
  return fee;
}

SourceContribution MetricsAggregator::contribution(
    const Overlay& overlay, const SourcePathSet& result,
    Scratch& scratch) const {
  if (scratch.overlay_ != &overlay) {
    // Working memory follows the scenario: the added-facility memo keys
    // synthetic link ids of this overlay only.
    scratch.overlay_ = &overlay;
    scratch.added_facilities_.clear();
  }
  SourceContribution out;
  out.grc_paths = result.grc().size();
  out.ma_paths = result.ma().size();

  const topology::Graph& graph = base_->graph();
  const auto km_of =
      [&](const diversity::Length3Path& p) -> std::optional<double> {
    if (!geodesy_.has_value() || !graph.info(p.src).has_geo ||
        !graph.info(p.mid).has_geo || !graph.info(p.dst).has_geo) {
      return std::nullopt;
    }
    return path_geodistance_km(overlay, p.src, p.mid, p.dst,
                               &scratch.added_facilities_);
  };

  using Best = Scratch::Best;
  std::unordered_map<AsId, Best>& best = scratch.best_;
  best.clear();
  const auto consider = [&](const diversity::Length3Path& p, bool grc) {
    auto [it, inserted] = best.try_emplace(p.dst);
    Best& slot = it->second;
    slot.grc_reachable = slot.grc_reachable || grc;
    const std::optional<double> km = km_of(p);
    // Without geodata the first-enumerated path wins (deterministic);
    // with it, the strictly shortest one.
    if (inserted) {
      slot.path = p;
      if (km.has_value()) {
        slot.km = *km;
        slot.has_km = true;
      }
      return;
    }
    if (km.has_value() && *km < slot.km) {
      slot.path = p;
      slot.km = *km;
      slot.has_km = true;
    }
  };
  for (const diversity::Length3Path& p : result.grc()) {
    consider(p, /*grc=*/true);
  }
  for (const diversity::Length3Path& p : result.ma()) {
    consider(p, /*grc=*/false);
  }

  // Fold in ascending destination order, not hash-bucket order: the
  // float sums must be a pure function of (overlay, result), or a
  // contribution computed with a fresh Scratch would differ at ULP level
  // from one computed mid-sequence with a grown bucket array - and the
  // serving layer splices independently computed contributions into
  // cached ones (byte-identity contract).
  auto& dsts = scratch.dst_order_;
  dsts.clear();
  dsts.reserve(best.size());
  for (const auto& [dst, slot] : best) {
    dsts.emplace_back(dst, &slot);
  }
  std::sort(dsts.begin(), dsts.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [dst, slot_ptr] : dsts) {
    const Best& slot = *slot_ptr;
    if (slot.grc_reachable) {
      ++out.grc_pairs;
    } else {
      ++out.ma_extra_pairs;
    }
    if (slot.has_km) {
      out.km_sum += slot.km;
      ++out.km_pairs;
    }
    const AsId hops[3] = {slot.path.src, slot.path.mid, slot.path.dst};
    out.transit_fees += path_fee(overlay, hops, 1.0);
  }
  return out;
}

ScenarioMetrics MetricsAggregator::aggregate(
    const Overlay& overlay, const std::vector<AsId>& sources,
    const std::vector<const SourcePathSet*>& results) const {
  util::require(sources.size() == results.size(),
                "MetricsAggregator::aggregate: sources/results mismatch");
  Scratch scratch;
  SourceContribution total;
  for (const SourcePathSet* result : results) {
    total += contribution(overlay, *result, scratch);
  }
  return finalize(total);
}

ScenarioMetrics MetricsAggregator::aggregate(
    const Overlay& overlay, const std::vector<AsId>& sources,
    const std::vector<SourcePathSet>& results) const {
  std::vector<const SourcePathSet*> refs;
  refs.reserve(results.size());
  for (const SourcePathSet& result : results) {
    refs.push_back(&result);
  }
  return aggregate(overlay, sources, refs);
}

}  // namespace panagree::scenario
