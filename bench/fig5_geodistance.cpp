// Figure 5: geodistance analysis of MA-created paths (§VI-B).
//
// 5a: CDF over AS pairs (connected by >= 1 GRC length-3 path) of the number
//     of additional MA paths whose geodistance is below the pair's GRC
//     maximum / median / minimum.
// 5b: CDF of the relative reduction of the minimum geodistance over the
//     pairs that improve at all.
//
// Paper reference points: ~50% of pairs gain at least one path shorter than
// the GRC minimum; ~25% gain at least 5; among improving pairs the median
// relative reduction exceeds 24%.
#include <iostream>

#include "bench_common.hpp"
#include "panagree/diversity/geodistance.hpp"
#include "panagree/diversity/report.hpp"
#include "panagree/util/stats.hpp"
#include "panagree/util/table.hpp"

namespace {

using namespace panagree;

}  // namespace

int main() {
  std::cout << "== Figure 5: geodistance of MA paths vs. GRC baselines ==\n";
  const auto net = benchcfg::load_internet();
  const auto sources = diversity::sample_sources(
      net.graph(), benchcfg::num_sources(), benchcfg::kSampleSeed);
  const auto report =
      diversity::analyze_geodistance(net.graph(), net.world(), sources);
  std::cout << "analyzed AS pairs: " << report.pairs.size() << "\n\n";

  // ---- Fig. 5a ----
  std::vector<double> below_max, below_median, below_min;
  std::vector<double> reductions;
  std::size_t improving = 0;
  for (const auto& pair : report.pairs) {
    below_max.push_back(static_cast<double>(pair.ma_paths_below_grc_max));
    below_median.push_back(
        static_cast<double>(pair.ma_paths_below_grc_median));
    below_min.push_back(static_cast<double>(pair.ma_paths_below_grc_min));
    if (pair.relative_reduction > 0.0) {
      ++improving;
      reductions.push_back(pair.relative_reduction);
    }
  }
  const util::Cdf cdf_max(below_max), cdf_median(below_median),
      cdf_min(below_min);

  util::Table fig5a({"x (paths)", "CDF < GRC max", "CDF < GRC median",
                     "CDF < GRC min"});
  for (const double x : util::log_space(1.0, 256.0, 10)) {
    // The paper plots P[count <= x]; pairs with zero qualifying paths show
    // up as the CDF value left of x = 1.
    fig5a.add_row({x, cdf_max.fraction_at_or_below(x),
                   cdf_median.fraction_at_or_below(x),
                   cdf_min.fraction_at_or_below(x)},
                  3);
  }
  std::cout << "-- Fig. 5a: #additional MA paths below GRC thresholds --\n";
  fig5a.print(std::cout);
  fig5a.print_csv(std::cout, "fig5a");

  util::Table readout5a({"metric", "measured", "paper"});
  readout5a.add_row(
      {"share of pairs with >=1 MA path < GRC min",
       util::format_double(cdf_min.fraction_above(0.5), 3), "~0.50"});
  readout5a.add_row(
      {"share of pairs with >=5 MA paths < GRC min",
       util::format_double(cdf_min.fraction_above(4.5), 3), "~0.25"});
  readout5a.add_row(
      {"share of pairs with >=7 MA paths < GRC median",
       util::format_double(cdf_median.fraction_above(6.5), 3), "~0.25"});
  readout5a.add_row(
      {"share of pairs with >=8 MA paths < GRC max",
       util::format_double(cdf_max.fraction_above(7.5), 3), "~0.25"});
  std::cout << '\n';
  readout5a.print(std::cout);
  readout5a.print_csv(std::cout, "fig5a_readout");

  // ---- Fig. 5b ----
  std::cout << "\n-- Fig. 5b: relative geodistance reduction (improving "
               "pairs: "
            << improving << ") --\n";
  if (!reductions.empty()) {
    const util::Cdf cdf_red(reductions);
    util::Table fig5b({"reduction", "CDF"});
    for (const double x : util::lin_space(0.0, 1.0, 11)) {
      fig5b.add_row({x, cdf_red.fraction_at_or_below(x)}, 3);
    }
    fig5b.print(std::cout);
    fig5b.print_csv(std::cout, "fig5b");

    util::Table readout5b({"metric", "measured", "paper"});
    readout5b.add_row(
        {"median relative reduction among improving pairs",
         util::format_double(cdf_red.value_at_fraction(0.5), 3), ">0.24"});
    std::cout << '\n';
    readout5b.print(std::cout);
    readout5b.print_csv(std::cout, "fig5b_readout");
  }
  return 0;
}
