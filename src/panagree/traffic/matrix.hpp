// Gravity-model traffic matrices.
//
// Demands between AS pairs are proportional to the product of the
// endpoints' "masses" (1 + customer count, a customer-cone proxy). Used to
// seed the base traffic distribution f_X that agreement evaluation (§III-B)
// perturbs.
#pragma once

#include <vector>

#include "panagree/topology/graph.hpp"
#include "panagree/util/rng.hpp"

namespace panagree::traffic {

using topology::AsId;
using topology::Graph;

struct Demand {
  AsId src = topology::kInvalidAs;
  AsId dst = topology::kInvalidAs;
  double volume = 0.0;
};

struct GravityParams {
  /// Total traffic volume distributed across all generated demands.
  double total_volume = 1000.0;
  /// Number of (src, dst) pairs to sample; 0 = all ordered pairs (only
  /// sensible for small graphs).
  std::size_t sampled_pairs = 0;
  /// Exponent on the mass product (1 = classic gravity).
  double exponent = 1.0;
};

/// AS mass for the gravity model: 1 + |customers|.
[[nodiscard]] double gravity_mass(const Graph& graph, AsId as);

/// Generates a gravity traffic matrix. With sampled_pairs == 0, all ordered
/// pairs (src != dst) receive volume proportional to (m_src * m_dst)^e;
/// otherwise `sampled_pairs` pairs are drawn mass-proportionally and the
/// total volume is split evenly among them.
[[nodiscard]] std::vector<Demand> generate_gravity_demands(
    const Graph& graph, const GravityParams& params, util::Rng& rng);

}  // namespace panagree::traffic
