#include "panagree/paths/enumerator.hpp"

namespace panagree::paths {

bool is_valley_free(const CompiledTopology& topo, const Path& path) {
  return is_valley_free_walk(
      path, [&](AsId x, AsId y) { return topo.role_of(x, y); });
}

}  // namespace panagree::paths
