// The unified path-enumeration engine.
//
// Every headline analysis of the paper reduces to walking the AS
// relationship graph under some step-admission rule:
//   * BGP policy compilation enumerates valley-free (Gao-Rexford) paths,
//     optionally extended by mutual-transit agreements (§II);
//   * the path-diversity analysis (§VI) enumerates length-3 GRC and
//     mutuality-agreement paths;
//   * PAN path construction splices segments across authorized
//     agreement crossings (§III-B).
//
// Historically each layer re-implemented its own DFS over Graph with
// per-hop hash lookups. PathEnumerator expresses all of them as *policies*
// over one DFS core running on a CompiledTopology (CSR) snapshot: a policy
// is a small value type that admits or rejects a candidate step and
// advances a policy-defined state (e.g. the climbing/descending phase of a
// valley-free walk). Policies are passed as template parameters, so the
// admission check inlines into the walk loop - no std::function per hop.
//
// A policy must provide:
//   using State = <copyable state type>;
//   State initial_state() const;
//   bool allowed(const Step& step, State state, State& next_state) const;
//
// A policy may additionally provide
//   RoleMask admissible_roles(State state) const;
// returning a *superset* of the roles allowed() can ever admit in that
// state (allowed() stays the authority - the mask may not consult depth
// or off-path lookups). When the policy has the hook and the topology
// view exposes a contiguous role lane (CompiledTopology::role_lane), the
// DFS pre-filters each CSR row with the SIMD role scan
// (paths::filter_roles) and only offers the surviving entries to
// allowed(); otherwise it scans the full row. Both paths enumerate the
// same paths in the same order.
//
// The sink invoked for every emitted path returns bool: `true` to keep
// extending the path, `false` to treat it as terminal (e.g. the
// destination was reached).
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "panagree/paths/role_filter.hpp"
#include "panagree/topology/compiled.hpp"

namespace panagree::paths {

using topology::AsId;
using topology::CompiledTopology;
using topology::NeighborRole;

/// A path is the visited AS sequence, source first.
using Path = std::vector<AsId>;

/// Phase of an (extended) valley-free walk.
enum class WalkPhase : std::uint8_t {
  kClimbing,    ///< still on customer->provider steps
  kDescending,  ///< crossed the plateau; only provider->customer steps left
};

/// One candidate extension offered to a policy: the walk stands at `cur`
/// (reached from `prev`; kInvalidAs on the first step) and considers the
/// neighbor `next`, whose role as seen from `cur` is `role`.
struct Step {
  AsId source = topology::kInvalidAs;
  AsId prev = topology::kInvalidAs;
  AsId cur = topology::kInvalidAs;
  AsId next = topology::kInvalidAs;
  NeighborRole role = NeighborRole::kPeer;
  /// ASes on the path before the step (>= 1).
  std::size_t depth = 0;
};

/// The Gao-Rexford valley-free rule: climb via providers, cross at most one
/// peering link, then only descend via customers.
struct ValleyFreeStep {
  using State = WalkPhase;
  [[nodiscard]] State initial_state() const { return WalkPhase::kClimbing; }
  [[nodiscard]] bool allowed(const Step& step, State state,
                             State& next_state) const {
    switch (step.role) {
      case NeighborRole::kProvider:
        if (state != WalkPhase::kClimbing) {
          return false;
        }
        next_state = WalkPhase::kClimbing;
        return true;
      case NeighborRole::kPeer:
        if (state != WalkPhase::kClimbing) {
          return false;
        }
        next_state = WalkPhase::kDescending;
        return true;
      case NeighborRole::kCustomer:
        next_state = WalkPhase::kDescending;
        return true;
    }
    return false;
  }

  /// Descending walks can only ever take customer steps; climbing admits
  /// everything.
  [[nodiscard]] RoleMask admissible_roles(State state) const {
    return state == WalkPhase::kClimbing ? kAllRoles : kCustomerBit;
  }
};

/// Valley-free extended by "mutual provider access" agreements (§II): a
/// peering step across an agreement link keeps the climbing right, so the
/// partner may hand the traffic to its own providers next.
class MutualTransitStep {
 public:
  using State = WalkPhase;

  explicit MutualTransitStep(std::vector<std::pair<AsId, AsId>> mutual)
      : mutual_(std::move(mutual)) {
    for (auto& [a, b] : mutual_) {
      if (a > b) {
        std::swap(a, b);
      }
    }
  }

  [[nodiscard]] State initial_state() const { return WalkPhase::kClimbing; }

  [[nodiscard]] bool allowed(const Step& step, State state,
                             State& next_state) const {
    if (step.role == NeighborRole::kPeer && state == WalkPhase::kClimbing &&
        is_mutual(step.cur, step.next)) {
      next_state = WalkPhase::kClimbing;
      return true;
    }
    return ValleyFreeStep{}.allowed(step, state, next_state);
  }

  /// Mutual-transit agreements only widen *peer* admission while
  /// climbing - a phase where peers are admissible anyway - so the mask
  /// is the valley-free one.
  [[nodiscard]] RoleMask admissible_roles(State state) const {
    return ValleyFreeStep{}.admissible_roles(state);
  }

 private:
  [[nodiscard]] bool is_mutual(AsId x, AsId y) const {
    const AsId lo = std::min(x, y);
    const AsId hi = std::max(x, y);
    for (const auto& [a, b] : mutual_) {
      if (a == lo && b == hi) {
        return true;
      }
    }
    return false;
  }

  std::vector<std::pair<AsId, AsId>> mutual_;
};

/// The length-3 mutuality-agreement rule of §VI. An AS S gains the path
/// S-P-Z either *directly* (P is a peer of S; their MA grants S the
/// providers and peers of P that are not customers of S) or *indirectly*
/// (P is a customer or peer of S; the MA between P and its peer Z grants Z
/// access to S unless S is a customer of Z, making S-P-Z usable from S's
/// end as well). Emitted (P, Z) pairs are unique by construction, matching
/// the (mid, dst) deduplication of the legacy analyzer.
///
/// Parameterized over the topology view (CompiledTopology or
/// scenario::Overlay) because the rule consults roles of AS pairs that are
/// not on the walked path - those lookups must see the same view the walk
/// runs on.
template <typename Topo>
class BasicMaLength3Step {
 public:
  enum class Via : std::uint8_t { kStart, kPeer, kCustomer };
  using State = Via;

  /// `include_indirect` = false restricts to the directly gained paths
  /// (the paper's MA* series).
  BasicMaLength3Step(const Topo& topo, bool include_indirect)
      : topo_(&topo), include_indirect_(include_indirect) {}

  [[nodiscard]] State initial_state() const { return Via::kStart; }

  [[nodiscard]] bool allowed(const Step& step, State state,
                             State& next_state) const {
    if (state == Via::kStart) {
      if (step.role == NeighborRole::kPeer) {
        next_state = Via::kPeer;
        return true;
      }
      if (include_indirect_ && step.role == NeighborRole::kCustomer) {
        next_state = Via::kCustomer;
        return true;
      }
      return false;
    }
    if (step.depth != 2) {
      return false;  // length-3 paths only
    }
    next_state = state;
    const AsId s = step.source;
    const AsId z = step.next;
    if (state == Via::kPeer) {
      // Direct grant: Z is a provider or peer of the mid AS, and not a
      // customer of S.
      const bool direct =
          (step.role == NeighborRole::kProvider ||
           step.role == NeighborRole::kPeer) &&
          topo_->role_of(s, z) != NeighborRole::kCustomer;
      if (direct) {
        return true;
      }
    }
    // Indirect grant: Z is a peer of the mid AS and S is not a customer
    // of Z.
    return include_indirect_ && step.role == NeighborRole::kPeer &&
           topo_->role_of(z, s) != NeighborRole::kCustomer;
  }

  /// Superset of what allowed() admits per state (the role tests above,
  /// without the depth/role_of refinements): first hops leave S via a
  /// peer (or a customer when indirect grants count); from a peer mid AS
  /// the grant targets providers and peers; from a customer mid AS only
  /// its peers.
  [[nodiscard]] RoleMask admissible_roles(State state) const {
    switch (state) {
      case Via::kStart:
        return include_indirect_
                   ? static_cast<RoleMask>(kPeerBit | kCustomerBit)
                   : kPeerBit;
      case Via::kPeer:
        return static_cast<RoleMask>(kProviderBit | kPeerBit);
      case Via::kCustomer:
        return kPeerBit;
    }
    return kAllRoles;
  }

 private:
  const Topo* topo_;
  bool include_indirect_;
};

using MaLength3Step = BasicMaLength3Step<CompiledTopology>;

/// The shared walk engine, parameterized over the topology view: any type
/// exposing num_ases(), for_each_entry(as, fn) yielding
/// CompiledTopology::Entry-shaped values in CSR row order, and role_of
/// (the snapshot itself, or a scenario::Overlay splicing link deltas into
/// that order). Stateless apart from the view pointer; one instance can
/// serve concurrent walks from multiple threads.
template <typename Topo>
class BasicPathEnumerator {
 public:
  explicit BasicPathEnumerator(const Topo& topo) : topo_(&topo) {}

  [[nodiscard]] const Topo& topology() const { return *topo_; }

  /// Visits every simple policy-admitted path of >= 2 ASes starting at
  /// `src`, bounded by `max_len` ASes. `sink(path)` is invoked for each
  /// path in DFS order (CSR row order: providers, peers, customers, each
  /// ascending by id) and returns whether to keep extending that path.
  template <typename Policy, typename Sink>
  void visit_paths(AsId src, std::size_t max_len, const Policy& policy,
                   Sink&& sink) const {
    util::require(src < topo_->num_ases(),
                  "PathEnumerator: source out of range");
    if (max_len < 2) {
      return;
    }
    // Per-thread, epoch-stamped visited marks: an O(num_ases) allocation +
    // clear per walk would dominate per-source fan-outs on large graphs
    // (a stub AS yields a handful of paths but would pay a full-graph
    // clear). A mark is "on the current walk's path" iff it equals the
    // walk's epoch; stale marks from earlier walks never match. The DFS
    // saves and restores the previous mark per frame, so re-entrant walks
    // (a sink starting another walk) stay correct.
    thread_local std::vector<std::uint64_t> visited;
    thread_local std::uint64_t epoch = 0;
    if (visited.size() < topo_->num_ases()) {
      visited.resize(topo_->num_ases(), 0);
    }
    const std::uint64_t walk = ++epoch;
    const std::uint64_t saved_src = visited[src];
    visited[src] = walk;
    Path path;
    path.reserve(max_len);
    path.push_back(src);
    dfs(policy, sink, path, visited, walk, topology::kInvalidAs,
        policy.initial_state(), max_len);
    visited[src] = saved_src;
  }

  /// All simple policy-admitted paths src -> dst with at most `max_len`
  /// ASes. Paths are terminal at dst (a path never continues through the
  /// destination). Returns {{src}} when src == dst.
  template <typename Policy>
  [[nodiscard]] std::vector<Path> paths_between(AsId src, AsId dst,
                                                std::size_t max_len,
                                                const Policy& policy) const {
    util::require(dst < topo_->num_ases(),
                  "PathEnumerator: destination out of range");
    std::vector<Path> out;
    if (src == dst) {
      util::require(src < topo_->num_ases(),
                    "PathEnumerator: source out of range");
      out.push_back({src});
      return out;
    }
    visit_paths(src, max_len, policy, [&](const Path& path) {
      if (path.back() == dst) {
        out.push_back(path);
        return false;
      }
      return true;
    });
    return out;
  }

  /// True iff consecutive path elements are linked in the topology (role
  /// oblivious; the adjacency test PAN candidate validation needs).
  /// Phrased via role_of so it stays within the topology-view protocol
  /// (CompiledTopology and scenario::Overlay both implement it).
  [[nodiscard]] bool links_exist(const Path& path) const {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (!topo_->role_of(path[i], path[i + 1]).has_value()) {
        return false;
      }
    }
    return true;
  }

 private:
  /// True when dfs() can pre-filter rows: the view exposes a contiguous
  /// role lane and the policy declares its admissible roles per state.
  template <typename Policy>
  static constexpr bool kCanRoleFilter =
      requires(const Topo& t, const Policy& p, typename Policy::State s) {
        { t.role_lane(AsId{0}) } -> std::convertible_to<const std::uint8_t*>;
        { t.entries(AsId{0}) }
            -> std::convertible_to<
                std::span<const topology::CompiledTopology::Entry>>;
        { p.admissible_roles(s) } -> std::convertible_to<RoleMask>;
      };

  template <typename Policy, typename Sink>
  void dfs(const Policy& policy, Sink& sink, Path& path,
           std::vector<std::uint64_t>& visited, std::uint64_t walk,
           AsId prev, typename Policy::State state,
           std::size_t max_len) const {
    const AsId cur = path.back();
    const auto try_step = [&](const auto& entry) {
      if (visited[entry.neighbor] == walk) {
        return;
      }
      typename Policy::State next_state = state;
      const Step step{path.front(), prev,        cur,
                      entry.neighbor, entry.role, path.size()};
      if (!policy.allowed(step, state, next_state)) {
        return;
      }
      path.push_back(entry.neighbor);
      const bool extend = sink(static_cast<const Path&>(path));
      if (extend && path.size() < max_len) {
        const std::uint64_t saved = visited[entry.neighbor];
        visited[entry.neighbor] = walk;
        dfs(policy, sink, path, visited, walk, cur, next_state, max_len);
        visited[entry.neighbor] = saved;
      }
      path.pop_back();
    };
    if constexpr (kCanRoleFilter<Policy>) {
      const RoleMask mask = policy.admissible_roles(state);
      if (mask != kAllRoles) {
        const auto row = topo_->entries(cur);
        // One scratch vector per thread, used as a stack of per-frame
        // index lists: this frame appends its admitted indices, deeper
        // frames append after them, and each frame truncates back on
        // exit. Indexed (not iterator) access - recursion may reallocate.
        thread_local std::vector<std::uint32_t> scratch;
        const std::size_t frame = scratch.size();
        scratch.resize(frame + row.size());
        const std::size_t admitted = filter_roles(
            topo_->role_lane(cur), row.size(), mask, scratch.data() + frame);
        scratch.resize(frame + admitted);
        const std::size_t end = frame + admitted;
        for (std::size_t k = frame; k < end; ++k) {
          try_step(row[scratch[k]]);
        }
        scratch.resize(frame);
        return;
      }
    }
    topo_->for_each_entry(cur, try_step);
  }

  const Topo* topo_;
};

using PathEnumerator = BasicPathEnumerator<CompiledTopology>;

/// Validates a whole path against the valley-free rule using any role
/// lookup shaped like `role_of(x, y) -> std::optional<NeighborRole>`
/// (Graph or CompiledTopology). Single-AS and empty paths are trivially
/// valley-free; a hop without a link is not. The single source of truth
/// shared by the bgp layer's Graph-based validator and the snapshot one.
template <typename RoleFn>
[[nodiscard]] bool is_valley_free_walk(const Path& path, RoleFn&& role_of) {
  if (path.size() <= 1) {
    return true;
  }
  const ValleyFreeStep rule;
  WalkPhase phase = rule.initial_state();
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const std::optional<NeighborRole> role = role_of(path[i], path[i + 1]);
    if (!role.has_value()) {
      return false;  // not even a link
    }
    const Step step{path.front(),
                    i == 0 ? topology::kInvalidAs : path[i - 1],
                    path[i],
                    path[i + 1],
                    *role,
                    i + 1};
    WalkPhase next_phase = phase;
    if (!rule.allowed(step, phase, next_phase)) {
      return false;
    }
    phase = next_phase;
  }
  return true;
}

/// True iff the role sequence of `path` in `topo` is admitted by the
/// valley-free rule.
[[nodiscard]] bool is_valley_free(const CompiledTopology& topo,
                                  const Path& path);

}  // namespace panagree::paths
