#include "panagree/core/agreements/mutuality.hpp"

#include <algorithm>

namespace panagree::agreements {

namespace {

/// Fills `grant` with the providers/peers of the grantor that the
/// beneficiary may newly reach: everything that is not the beneficiary
/// itself and not one of the beneficiary's customers.
void fill_ma_grant(const Graph& graph, AccessGrant& grant, AsId beneficiary) {
  const auto excluded = [&](AsId z) {
    return z == beneficiary ||
           graph.role_of(beneficiary, z) == topology::NeighborRole::kCustomer;
  };
  for (const AsId p : graph.providers(grant.grantor)) {
    if (!excluded(p)) {
      grant.providers.push_back(p);
    }
  }
  for (const AsId p : graph.peers(grant.grantor)) {
    if (!excluded(p)) {
      grant.peers.push_back(p);
    }
  }
  std::sort(grant.providers.begin(), grant.providers.end());
  std::sort(grant.peers.begin(), grant.peers.end());
}

}  // namespace

Agreement make_mutuality_agreement(const Graph& graph, AsId x, AsId y) {
  util::require(graph.are_peers(x, y),
                "make_mutuality_agreement: parties must be peers");
  Agreement a;
  a.grant_x.grantor = x;
  a.grant_y.grantor = y;
  fill_ma_grant(graph, a.grant_x, y);
  fill_ma_grant(graph, a.grant_y, x);
  return a;
}

std::size_t ma_gain_for(const Graph& graph, AsId x, AsId y) {
  util::require(graph.are_peers(x, y), "ma_gain_for: parties must be peers");
  std::size_t gain = 0;
  const auto counted = [&](AsId z) {
    return z != x &&
           graph.role_of(x, z) != topology::NeighborRole::kCustomer;
  };
  for (const AsId p : graph.providers(y)) {
    if (counted(p)) {
      ++gain;
    }
  }
  for (const AsId p : graph.peers(y)) {
    if (counted(p)) {
      ++gain;
    }
  }
  return gain;
}

}  // namespace panagree::agreements
