// Synthetic Internet-like AS topology generator.
//
// Substitutes the CAIDA AS-relationship dataset of §VI (see DESIGN.md §1).
// The generator reproduces the structural features the paper's analysis
// depends on:
//   * a small, fully-meshed Tier-1 core;
//   * power-law provider degrees via preferential attachment (large customer
//     cones at a few transit ASes);
//   * dense, IXP-driven peering meshes with "open peering" hubs (the source
//     of the enormous MA path counts in Figures 3-4);
//   * regional locality of peering and provider choice, plus PoP/facility
//     geolocation for the geodistance analysis of §VI-B.
//
// The entire construction is deterministic given `seed`.
#pragma once

#include <cstdint>
#include <vector>

#include "panagree/geo/region.hpp"
#include "panagree/topology/graph.hpp"
#include "panagree/util/rng.hpp"

namespace panagree::topology {

/// Tuning knobs of the generator; the defaults yield an Internet-like graph
/// whose diversity CDFs reproduce the shapes of the paper's Figures 3-6.
struct GeneratorParams {
  std::size_t num_ases = 12000;
  std::size_t tier1_count = 12;
  /// Fraction of ASes that are Tier-2 regional transits.
  double tier2_fraction = 0.08;
  std::uint64_t seed = 1;

  /// Probability of each additional provider (multihoming), up to 3 total.
  double tier2_extra_provider_prob = 0.55;
  double tier3_extra_provider_prob = 0.35;

  /// Exponent on (1 + customer count) in preferential provider selection.
  /// Values below 1 spread customers over mid-size transits (the real
  /// Internet's provider market is far less concentrated than its peering
  /// fabric) while keeping a heavy-tailed cone distribution.
  double preferential_bias = 0.6;
  /// Weight multiplier for same-region provider candidates.
  double same_region_provider_boost = 4.0;

  /// IXP-driven peering.
  std::size_t ixps_per_region = 3;
  double tier2_ixp_join_prob = 0.9;
  /// Most edge networks are present at an IXP (CAIDA's inferred p2p set is
  /// dominated by route-server/multilateral peerings, covering the vast
  /// majority of ASes).
  double tier3_ixp_join_prob = 0.9;
  double ixp_peer_prob_tier2 = 0.35;   ///< tier2-tier2 at a shared IXP
  double ixp_peer_prob_mixed = 0.03;   ///< tier2-tier3 at a shared IXP
  double ixp_peer_prob_tier3 = 0.004;  ///< tier3-tier3 bilateral at an IXP
  /// Hurricane-Electric-like open-peering hubs per region. Hubs have a
  /// global footprint: they are present at every IXP worldwide and peer
  /// openly - with probability hub_peer_prob with members at their home
  /// region's IXPs and hub_remote_peer_prob elsewhere (remote peering).
  /// These hubs are what drives the enormous MA path gains of Figures 3-4,
  /// exactly as the highest-peer-degree ASes do on the CAIDA graph.
  std::size_t open_peering_hubs_per_region = 3;
  double hub_peer_prob = 0.9;
  double hub_remote_peer_prob = 0.5;

  /// Geo model.
  std::size_t cities_per_region = 40;
  /// Max number of candidate interconnection facilities stored per link.
  std::size_t max_facilities_per_link = 3;
};

/// An IXP: a facility city plus its member ASes (exposed for inspection).
struct Ixp {
  std::size_t city = 0;
  std::size_t region = 0;
  std::vector<AsId> members;
};

/// Generator output: the graph, the geo world it is embedded in, and the
/// IXP substrate used to derive the peering mesh.
struct GeneratedTopology {
  Graph graph;
  geo::World world;
  std::vector<Ixp> ixps;
  std::vector<AsId> tier1;
  std::vector<AsId> tier2;
  std::vector<AsId> tier3;
  /// Open-peering hubs (globally present Tier-2 ASes), best-ranked first
  /// per region.
  std::vector<AsId> hubs;
};

/// Runs the generator. Throws util::PreconditionError on nonsensical
/// parameters (e.g. fewer ASes than Tier-1 nodes).
[[nodiscard]] GeneratedTopology generate_internet(const GeneratorParams& params);

/// Embeds a bare relationship graph (e.g. a parsed CAIDA as-rel2 dataset,
/// which carries no tiers, geodata, or facilities) into a synthetic world
/// so the geodistance and econ analyses can run on real topologies:
///   * tiers from the provider hierarchy (transit-free with customers ->
///     1; other transits and transit-free peer-only networks -> 2;
///     stubs -> 3);
///   * region, PoPs, centroid per AS and facility cities per link, drawn
///     like the generator's (deterministic given `seed`);
///   * tier1/tier2/tier3 membership lists.
/// The ixps/hubs lists stay empty - they are generator scaffolding, not
/// derivable from relationships alone.
[[nodiscard]] GeneratedTopology embed_relationship_graph(
    Graph graph, std::uint64_t seed, std::size_t cities_per_region = 40);

/// Candidate interconnection facilities for a link, estimated from the
/// endpoints' PoP sets: cities common to both endpoints first; without a
/// shared city, provider->customer links interconnect at the *provider's*
/// PoPs (the customer backhauls to its transit provider - the realistic
/// asymmetry that gives valley-free paths their geographic detours), and
/// peering links use the closest PoP pair. This is the rule the generator
/// and embed_relationship_graph assign existing links with, exposed so
/// what-if layers can derive facilities for links that do not exist yet
/// (`link` only needs endpoints and type; empty if an endpoint has no
/// PoPs).
[[nodiscard]] std::vector<std::size_t> estimate_link_facilities(
    const Graph& graph, const geo::World& world, const Link& link,
    std::size_t max_count = 3);

}  // namespace panagree::topology
