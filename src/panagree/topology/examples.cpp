#include "panagree/topology/examples.hpp"

namespace panagree::topology {

Fig1 make_fig1() {
  Fig1 t{};
  Graph& g = t.graph;
  t.A = g.add_as("A");
  t.B = g.add_as("B");
  t.C = g.add_as("C");
  t.D = g.add_as("D");
  t.E = g.add_as("E");
  t.F = g.add_as("F");
  t.G = g.add_as("G");
  t.H = g.add_as("H");
  t.I = g.add_as("I");

  g.add_peering(t.A, t.B);
  g.add_peering(t.C, t.D);
  g.add_peering(t.D, t.E);
  g.add_peering(t.E, t.F);
  g.add_peering(t.F, t.G);

  g.add_provider_customer(t.A, t.C);
  g.add_provider_customer(t.A, t.D);
  g.add_provider_customer(t.B, t.E);
  g.add_provider_customer(t.B, t.F);
  g.add_provider_customer(t.B, t.G);
  g.add_provider_customer(t.D, t.H);
  g.add_provider_customer(t.E, t.I);
  return t;
}

Diamond make_diamond() {
  Diamond t{};
  Graph& g = t.graph;
  t.P = g.add_as("P");
  t.X = g.add_as("X");
  t.Y = g.add_as("Y");
  t.CX = g.add_as("CX");
  t.CY = g.add_as("CY");

  g.add_provider_customer(t.P, t.X);
  g.add_provider_customer(t.P, t.Y);
  g.add_peering(t.X, t.Y);
  g.add_provider_customer(t.X, t.CX);
  g.add_provider_customer(t.Y, t.CY);
  return t;
}

}  // namespace panagree::topology
