// Fluid flow assignment: maps (path, rate) demands onto the topology,
// producing the econ::TrafficAllocation that the business model of §III
// consumes, plus a link-utilization report.
#pragma once

#include <vector>

#include "panagree/econ/business.hpp"
#include "panagree/topology/graph.hpp"

namespace panagree::sim {

using topology::AsId;
using topology::Graph;

/// A fluid demand: `volume` units of traffic along `path` per accounting
/// period (the paper's f interpretation: median/average/p95 of volume).
struct PathDemand {
  std::vector<AsId> path;
  double volume = 0.0;
};

struct LinkUtilization {
  topology::LinkId link = 0;
  double volume = 0.0;
  double capacity = 0.0;

  [[nodiscard]] double utilization() const {
    return capacity > 0.0 ? volume / capacity : 0.0;
  }
};

struct FlowAssignmentResult {
  econ::TrafficAllocation allocation;
  std::vector<LinkUtilization> links;  ///< one entry per graph link
  double max_utilization = 0.0;
  std::size_t overloaded_links = 0;  ///< utilization > 1
};

/// Assigns all demands. Every consecutive path pair must be linked in the
/// graph; volumes must be non-negative.
[[nodiscard]] FlowAssignmentResult assign_flows(
    const Graph& graph, const std::vector<PathDemand>& demands);

}  // namespace panagree::sim
