// Tests for agreement programs and the deployment optimizer: delta
// composition semantics, the program-prefix cache of SweepRunner
// (rebase), and the tentpole property - the optimizer's composed program
// is byte-identical, at every prefix and every thread count, to a full
// recompile-and-recompute of the mutated graph, with candidate-cache
// sharing on or off.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "panagree/diversity/length3.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/scenario/metrics.hpp"
#include "panagree/scenario/optimizer.hpp"
#include "panagree/scenario/program.hpp"
#include "panagree/scenario/sweep.hpp"
#include "panagree/topology/generator.hpp"
#include "panagree/util/rng.hpp"

namespace panagree::scenario {
namespace {

using topology::CompiledTopology;
using topology::Graph;
using topology::LinkType;

/// Applies a Delta the expensive way: rebuild the Graph from scratch with
/// removed links dropped and added links appended.
Graph mutate(const Graph& base, const Delta& delta) {
  Graph out;
  for (AsId as = 0; as < base.num_ases(); ++as) {
    const AsId id = out.add_as();
    out.info(id) = base.info(as);
  }
  const auto removed = [&](AsId x, AsId y) {
    for (const auto& [a, b] : delta.remove) {
      if ((a == x && b == y) || (a == y && b == x)) {
        return true;
      }
    }
    return false;
  };
  for (const auto& link : base.links()) {
    if (removed(link.a, link.b)) {
      continue;
    }
    if (link.type == LinkType::kProviderCustomer) {
      out.add_provider_customer(link.a, link.b);
    } else {
      out.add_peering(link.a, link.b);
    }
  }
  for (const LinkChange& change : delta.add) {
    if (change.type == LinkType::kProviderCustomer) {
      out.add_provider_customer(change.a, change.b);
    } else {
      out.add_peering(change.a, change.b);
    }
  }
  return out;
}

Delta add_peering(AsId a, AsId b) {
  Delta delta;
  delta.add.push_back({a, b, LinkType::kPeering});
  return delta;
}

TEST(Compose, AppendsAddsAndRemoves) {
  Delta base = add_peering(1, 2);
  base.remove.emplace_back(3, 4);
  Delta step = add_peering(5, 6);
  step.remove.emplace_back(7, 8);
  const Delta merged = compose(base, step);
  ASSERT_EQ(merged.add.size(), 2u);
  EXPECT_EQ(merged.add[0], (LinkChange{1, 2, LinkType::kPeering}));
  EXPECT_EQ(merged.add[1], (LinkChange{5, 6, LinkType::kPeering}));
  ASSERT_EQ(merged.remove.size(), 2u);
  EXPECT_EQ(merged.remove[1], (std::pair<AsId, AsId>{7, 8}));
}

TEST(Compose, RemovalCancelsEarlierAdd) {
  const Delta base = add_peering(1, 2);
  Delta step;
  step.remove.emplace_back(2, 1);  // either endpoint order cancels
  const Delta merged = compose(base, step);
  EXPECT_TRUE(merged.add.empty());
  EXPECT_TRUE(merged.remove.empty());
}

TEST(Compose, RetiringARewireKeepsTheBaseRemoval) {
  // Base: rewire 1-2 (remove the base link, add it back as peering).
  Delta base;
  base.remove.emplace_back(1, 2);
  base.add.push_back({1, 2, LinkType::kPeering});
  Delta step;
  step.remove.emplace_back(1, 2);
  const Delta merged = compose(base, step);
  EXPECT_TRUE(merged.add.empty());
  ASSERT_EQ(merged.remove.size(), 1u);  // the base link stays retired
}

TEST(Compose, RetireAndRedeployInOneStep) {
  const Delta base = add_peering(1, 2);
  Delta step;
  step.remove.emplace_back(1, 2);
  step.add.push_back({1, 2, LinkType::kProviderCustomer});
  const Delta merged = compose(base, step);
  ASSERT_EQ(merged.add.size(), 1u);
  EXPECT_EQ(merged.add[0].type, LinkType::kProviderCustomer);
  EXPECT_TRUE(merged.remove.empty());
}

TEST(Compose, RejectsDuplicateAdd) {
  const Delta base = add_peering(1, 2);
  EXPECT_THROW((void)compose(base, add_peering(2, 1)),
               util::PreconditionError);
}

TEST(TouchedAses, SortedUniqueEndpoints) {
  Delta delta = add_peering(9, 3);
  delta.add.push_back({3, 5, LinkType::kProviderCustomer});
  delta.remove.emplace_back(9, 1);
  EXPECT_EQ(touched_ases(delta), (std::vector<AsId>{1, 3, 5, 9}));
}

TEST(Program, PrefixesCompose) {
  Program program;
  EXPECT_TRUE(program.empty());
  EXPECT_TRUE(program.composed().empty());
  program.push(add_peering(1, 2));
  program.push(add_peering(3, 4));
  Delta retire;
  retire.remove.emplace_back(1, 2);
  program.push(retire);
  ASSERT_EQ(program.size(), 3u);
  EXPECT_TRUE(program.composed(0).empty());
  EXPECT_EQ(program.composed(1).add.size(), 1u);
  EXPECT_EQ(program.composed(2).add.size(), 2u);
  EXPECT_EQ(program.composed(3).add.size(), 1u);
  EXPECT_EQ(program.composed().add[0], (LinkChange{3, 4, LinkType::kPeering}));
  EXPECT_THROW((void)program.composed(4), util::PreconditionError);
  EXPECT_EQ(program.step(1).add[0], (LinkChange{3, 4, LinkType::kPeering}));
}

TEST(Program, PushRejectsConflictAndLeavesProgramUnchanged) {
  Program program;
  program.push(add_peering(1, 2));
  EXPECT_THROW(program.push(add_peering(1, 2)), util::PreconditionError);
  EXPECT_EQ(program.size(), 1u);
  EXPECT_EQ(program.composed().add.size(), 1u);
}

topology::GeneratedTopology small_internet() {
  topology::GeneratorParams params;
  params.num_ases = 200;
  params.tier1_count = 4;
  params.seed = 77;
  return topology::generate_internet(params);
}

std::vector<AsId> every_third_source(const Graph& g) {
  std::vector<AsId> sources;
  for (AsId as = 0; as < g.num_ases(); as += 3) {
    sources.push_back(as);
  }
  return sources;
}

const auto kEnumerate = [](const Overlay& overlay, AsId src) {
  return enumerate_length3(overlay, src);
};

/// The program-prefix cache: a runner rebased step by step serves, at
/// every prefix, results byte-identical to a full recompile of the
/// cumulative graph - and candidate evaluations on top of the rebased
/// state stay exact too.
class RebaseEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RebaseEquivalence, RebasedEvaluationsMatchFullRecompute) {
  const auto topo = small_internet();
  const Graph& g = topo.graph;
  const CompiledTopology compiled(g);
  const std::vector<AsId> sources = every_third_source(g);

  SweepConfig config;
  config.threads = GetParam();
  config.dirty_radius = kLength3DirtyRadius;
  SweepRunner<SourcePathSet> runner(compiled, sources, config);
  runner.prime(kEnumerate);

  const auto deltas = candidate_peering_deltas(compiled, 6, 99);
  ASSERT_GE(deltas.size(), 4u);
  Program program;
  for (std::size_t i = 0; i < 3; ++i) {
    // Before committing, evaluate the step as a candidate on the current
    // state and keep the results for cross-checking.
    SweepStats stats;
    const std::vector<SourcePathSet> results =
        runner.evaluate(deltas[i], kEnumerate, &stats);
    EXPECT_EQ(stats.recomputed_sources + stats.cached_sources,
              sources.size());

    runner.rebase(deltas[i], kEnumerate);
    program.push(deltas[i]);
    EXPECT_EQ(runner.state().add.size(), program.composed().add.size());

    // The rebased cache, the pre-commit evaluation, and a full recompile
    // of the cumulative graph all agree byte-for-byte.
    const Graph mutated = mutate(g, program.composed());
    const CompiledTopology recompiled(mutated);
    const Overlay none(recompiled);
    for (std::size_t s = 0; s < sources.size(); ++s) {
      const SourcePathSet truth = enumerate_length3(none, sources[s]);
      EXPECT_EQ(runner.baseline()[s], truth)
          << "prefix " << program.size() << " source " << sources[s];
      EXPECT_EQ(results[s], truth)
          << "pre-commit eval, prefix " << program.size() << " source "
          << sources[s];
    }
  }

  // A fourth candidate evaluated (not committed) on the 3-step state.
  const std::vector<SourcePathSet> results =
      runner.evaluate(deltas[3], kEnumerate);
  const Graph mutated = mutate(g, compose(program.composed(), deltas[3]));
  const CompiledTopology recompiled(mutated);
  const Overlay none(recompiled);
  for (std::size_t s = 0; s < sources.size(); ++s) {
    EXPECT_EQ(results[s], enumerate_length3(none, sources[s]))
        << "source " << sources[s];
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, RebaseEquivalence,
                         ::testing::Values(1u, 2u, 8u));

struct OptimizerRun {
  OptimizerResult result;
  std::vector<Delta> candidates;
};

OptimizerRun run_optimizer(const topology::GeneratedTopology& topo,
                           const CompiledTopology& compiled,
                           const econ::Economy& economy, std::size_t threads,
                           bool share, std::size_t beam_width = 1) {
  const MetricsAggregator aggregator(compiled, &topo.world, &economy);
  OptimizerConfig config;
  config.max_steps = 3;
  config.beam_width = beam_width;
  config.sweep.threads = threads;
  config.sweep.dirty_radius = kLength3DirtyRadius;
  config.share_recomputes = share;
  const Optimizer optimizer(compiled, every_third_source(topo.graph),
                            aggregator, config);
  OptimizerRun run;
  run.candidates = candidate_peering_deltas(compiled, 24, 4242);
  run.result = optimizer.run(run.candidates);
  return run;
}

void expect_same_plan(const OptimizerResult& a, const OptimizerResult& b) {
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].candidate, b.steps[i].candidate);
    EXPECT_EQ(a.steps[i].delta.add, b.steps[i].delta.add);
    // Utilities are computed in a fixed association order, so they must
    // be bit-identical, not just close.
    EXPECT_EQ(a.steps[i].marginal_utility, b.steps[i].marginal_utility);
    EXPECT_EQ(a.steps[i].cumulative_utility, b.steps[i].cumulative_utility);
  }
  EXPECT_EQ(a.final_metrics.grc_paths, b.final_metrics.grc_paths);
  EXPECT_EQ(a.final_metrics.transit_fees, b.final_metrics.transit_fees);
}

/// The tentpole property: the greedy program is identical at every thread
/// count and with sharing on or off, and every program prefix is
/// byte-identical to a full recompile of the cumulative graph.
TEST(Optimizer, GreedyProgramMatchesFullRecompileAtEveryPrefix) {
  const auto topo = small_internet();
  const CompiledTopology compiled(topo.graph);
  const econ::Economy economy = econ::make_default_economy(topo.graph);

  const OptimizerRun shared =
      run_optimizer(topo, compiled, economy, /*threads=*/2, /*share=*/true);
  const OptimizerResult& result = shared.result;
  ASSERT_GT(result.steps.size(), 0u);
  ASSERT_EQ(result.steps.size(), result.program.size());

  // Thread-count invariance, sharing on.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const OptimizerRun other =
        run_optimizer(topo, compiled, economy, threads, /*share=*/true);
    expect_same_plan(result, other.result);
  }
  // Sharing must be a pure optimization: byte-identical plan without it.
  const OptimizerRun unshared =
      run_optimizer(topo, compiled, economy, /*threads=*/2, /*share=*/false);
  expect_same_plan(result, unshared.result);
  // And the shared run must actually have shared something.
  EXPECT_GT(result.stats.reused_evaluations,
            unshared.result.stats.reused_evaluations);
  EXPECT_LT(result.stats.recomputed_sources,
            unshared.result.stats.recomputed_sources);

  // Every prefix of the emitted program is byte-identical to a full
  // recompile-and-recompute of the cumulative graph.
  const std::vector<AsId> sources = every_third_source(topo.graph);
  for (std::size_t prefix = 0; prefix <= result.program.size(); ++prefix) {
    const Delta& composed = result.program.composed(prefix);
    Overlay overlay(compiled);
    overlay.apply(composed);
    const Graph mutated = mutate(topo.graph, composed);
    const CompiledTopology recompiled(mutated);
    const Overlay none(recompiled);
    for (const AsId src : sources) {
      EXPECT_EQ(enumerate_length3(overlay, src),
                enumerate_length3(none, src))
          << "prefix " << prefix << " source " << src;
    }
  }

  // Internal consistency: final metrics equal a from-scratch aggregation
  // of the full program, and cumulative utility telescopes to it.
  const MetricsAggregator aggregator(compiled, &topo.world, &economy);
  Overlay full(compiled);
  full.apply(result.program.composed());
  std::vector<SourcePathSet> full_results;
  full_results.reserve(sources.size());
  for (const AsId src : sources) {
    full_results.push_back(enumerate_length3(full, src));
  }
  const ScenarioMetrics direct =
      aggregator.aggregate(full, sources, full_results);
  EXPECT_EQ(result.final_metrics.grc_paths, direct.grc_paths);
  EXPECT_EQ(result.final_metrics.ma_paths, direct.ma_paths);
  EXPECT_EQ(result.final_metrics.grc_pairs, direct.grc_pairs);
  EXPECT_EQ(result.final_metrics.ma_extra_pairs, direct.ma_extra_pairs);
  EXPECT_NEAR(result.final_metrics.transit_fees, direct.transit_fees, 1e-9);
  EXPECT_NEAR(result.final_metrics.mean_best_geodistance_km,
              direct.mean_best_geodistance_km, 1e-9);
  EXPECT_NEAR(result.steps.back().cumulative_utility,
              operator_utility(subtract(direct, result.baseline)), 1e-9);

  // Steps must be distinct candidates with positive marginal utility.
  for (std::size_t i = 0; i < result.steps.size(); ++i) {
    EXPECT_GT(result.steps[i].marginal_utility, 0.0);
    for (std::size_t j = i + 1; j < result.steps.size(); ++j) {
      EXPECT_NE(result.steps[i].candidate, result.steps[j].candidate);
    }
  }
}

TEST(Optimizer, BeamSearchIsDeterministicAndValid) {
  const auto topo = small_internet();
  const CompiledTopology compiled(topo.graph);
  const econ::Economy economy = econ::make_default_economy(topo.graph);

  const OptimizerRun beam2 = run_optimizer(topo, compiled, economy,
                                           /*threads=*/2, /*share=*/true,
                                           /*beam_width=*/2);
  const OptimizerRun beam2_again = run_optimizer(topo, compiled, economy,
                                                 /*threads=*/8,
                                                 /*share=*/true,
                                                 /*beam_width=*/2);
  expect_same_plan(beam2.result, beam2_again.result);
  EXPECT_LE(beam2.result.program.size(), 3u);

  // A beam state's program must still compose and apply cleanly.
  Overlay overlay(compiled);
  overlay.apply(beam2.result.program.composed());
  // Cumulative utility is reported against the same baseline.
  const OptimizerRun greedy =
      run_optimizer(topo, compiled, economy, /*threads=*/2, /*share=*/true);
  EXPECT_EQ(beam2.result.baseline.grc_paths,
            greedy.result.baseline.grc_paths);
}

TEST(Optimizer, EmptyCandidatesYieldEmptyProgram) {
  const auto topo = small_internet();
  const CompiledTopology compiled(topo.graph);
  const econ::Economy economy = econ::make_default_economy(topo.graph);
  const MetricsAggregator aggregator(compiled, &topo.world, &economy);
  const Optimizer optimizer(compiled, every_third_source(topo.graph),
                            aggregator, {});
  const OptimizerResult result = optimizer.run({});
  EXPECT_TRUE(result.program.empty());
  EXPECT_TRUE(result.steps.empty());
  EXPECT_EQ(result.stats.scored_candidates, 0u);
}

TEST(Optimizer, InfeasibleCandidatesAreDropped) {
  const auto topo = small_internet();
  const CompiledTopology compiled(topo.graph);
  const econ::Economy economy = econ::make_default_economy(topo.graph);
  const MetricsAggregator aggregator(compiled, &topo.world, &economy);
  OptimizerConfig config;
  config.max_steps = 2;
  config.sweep.threads = 1;
  config.sweep.dirty_radius = kLength3DirtyRadius;
  const Optimizer optimizer(compiled, every_third_source(topo.graph),
                            aggregator, config);
  // A candidate that re-adds an existing base link never composes.
  const auto& link = topo.graph.links().front();
  std::vector<Delta> candidates;
  candidates.push_back(add_peering(link.a, link.b));
  const OptimizerResult result = optimizer.run(candidates);
  EXPECT_TRUE(result.program.empty());
}

}  // namespace
}  // namespace panagree::scenario
