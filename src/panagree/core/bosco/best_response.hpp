// Bargaining strategies and best-response computation (§V-C4, Algorithm 1).
//
// A strategy maps the party's true utility to a claim from its choice set.
// Because the expected after-negotiation utility of playing choice v_i is a
// *linear* function m_i u + q_i of the true utility u (Eq. 16-17), the best
// response is a threshold rule: choice i is played on the interval
// [t_i, t_{i+1}) where the line i is on the upper envelope. Algorithm 1
// computes that threshold series.
#pragma once

#include <vector>

#include "panagree/core/bosco/choice_set.hpp"

namespace panagree::bosco {

/// A threshold strategy over a choice set of W choices: choice i is played
/// when the true utility lies in [start(i), start(i+1)); start(0) = -inf
/// and start(W) = +inf. Choices with empty intervals are never played.
class Strategy {
 public:
  /// `starts` must have size W+1, be non-decreasing, with -inf first and
  /// +inf last.
  explicit Strategy(std::vector<double> starts);

  /// The natural quantizer: play the choice closest to the true utility
  /// (interval boundaries at midpoints between consecutive choices). Used
  /// as the initial strategy of the equilibrium iteration.
  [[nodiscard]] static Strategy quantizer(const ChoiceSet& choices);

  /// Index of the choice played at true utility u.
  [[nodiscard]] std::size_t choice_for(double u) const;

  [[nodiscard]] std::size_t num_choices() const { return starts_.size() - 1; }
  [[nodiscard]] const std::vector<double>& starts() const { return starts_; }

  /// Number of choices with a non-empty interval (the paper's "equilibrium
  /// choices" count in §V-E).
  [[nodiscard]] std::size_t active_choices() const;

  /// §V-D privacy metric: the length of the shortest non-empty *bounded*
  /// interval. A small value means one claim pins the true utility into a
  /// narrow range; the unbounded end intervals leak only one-sided bounds
  /// and are excluded. Returns +infinity if every active interval is
  /// unbounded.
  [[nodiscard]] double shortest_active_interval() const;

  /// True iff both strategies play the same choice everywhere up to
  /// interval boundaries within `eps`.
  [[nodiscard]] bool approx_equal(const Strategy& other, double eps) const;

 private:
  std::vector<double> starts_;
};

/// P[v_Z = i]: probability that a party with distribution `dist` playing
/// `strategy` commits choice i (Eq. 15).
[[nodiscard]] std::vector<double> claim_probabilities(
    const Strategy& strategy, const UtilityDistribution& dist);

/// A line m u + q: the expected after-negotiation utility of playing a
/// fixed choice as a function of the true utility u.
struct UtilityLine {
  double m = 0.0;
  double q = 0.0;
};

/// Eq. 16-17: the (m_i, q_i) lines for each of `own` given the opponent's
/// choice values and claim probabilities.
[[nodiscard]] std::vector<UtilityLine> expected_utility_lines(
    const ChoiceSet& own, const ChoiceSet& opponent,
    const std::vector<double>& opponent_probs);

/// Algorithm 1: the best-response threshold strategy for the given lines.
[[nodiscard]] Strategy best_response(const std::vector<UtilityLine>& lines);

/// Convenience: best response against (opponent strategy, opponent
/// distribution).
[[nodiscard]] Strategy best_response_to(const ChoiceSet& own,
                                        const ChoiceSet& opponent,
                                        const Strategy& opponent_strategy,
                                        const UtilityDistribution& opponent_dist);

}  // namespace panagree::bosco
