#include "panagree/scenario/program.hpp"

#include <algorithm>

#include "panagree/util/error.hpp"

namespace panagree::scenario {

namespace {

[[nodiscard]] bool same_pair(AsId ax, AsId ay, AsId bx, AsId by) {
  return (ax == bx && ay == by) || (ax == by && ay == bx);
}

}  // namespace

Delta compose(const Delta& base, const Delta& step) {
  Delta out = base;
  // Removals first, so a step may retire-and-redeploy the same pair.
  for (const auto& [x, y] : step.remove) {
    const auto it = std::find_if(
        out.add.begin(), out.add.end(), [&, x = x, y = y](const LinkChange& c) {
          return same_pair(c.a, c.b, x, y);
        });
    if (it != out.add.end()) {
      // Cancels a link an earlier step added. If the base delta also
      // removed the pair (rewire), that removal stays in effect; either
      // way the step's removal itself is absorbed.
      out.add.erase(it);
      continue;
    }
    out.remove.emplace_back(x, y);
  }
  for (const LinkChange& change : step.add) {
    const bool already_added = std::any_of(
        out.add.begin(), out.add.end(), [&](const LinkChange& c) {
          return same_pair(c.a, c.b, change.a, change.b);
        });
    util::require(!already_added,
                  "scenario::compose: step re-adds a pair an earlier step "
                  "already deploys");
    out.add.push_back(change);
  }
  return out;
}

std::vector<AsId> touched_ases(const Delta& delta) {
  std::vector<AsId> touched;
  touched.reserve(2 * (delta.add.size() + delta.remove.size()));
  for (const LinkChange& change : delta.add) {
    touched.push_back(change.a);
    touched.push_back(change.b);
  }
  for (const auto& [x, y] : delta.remove) {
    touched.push_back(x);
    touched.push_back(y);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

void Program::push(Delta step) {
  prefixes_.push_back(compose(prefixes_.back(), step));
  steps_.push_back(std::move(step));
}

const Delta& Program::step(std::size_t i) const {
  util::require(i < steps_.size(), "Program::step: index out of range");
  return steps_[i];
}

const Delta& Program::composed(std::size_t prefix) const {
  util::require(prefix < prefixes_.size(),
                "Program::composed: prefix longer than the program");
  return prefixes_[prefix];
}

}  // namespace panagree::scenario
