// The wire protocol of the serving layer: versioned, newline-delimited
// JSON over a byte stream, no third-party dependencies.
//
// Every request and every response is one JSON object on one line. The
// protocol is versioned by the "v" field; a server rejects versions other
// than kProtocolVersion with an error response instead of guessing. Three
// request kinds mirror the query engine's operations, plus two
// introspection kinds and one admin kind:
//
//   {"v":1,"id":7,"kind":"paths","source":42}
//   {"v":1,"id":8,"kind":"diversity","source":42}
//   {"v":1,"id":9,"kind":"whatif","add":[{"a":1,"b":2,"type":"peering"}],
//    "remove":[[3,4]]}
//   {"v":1,"id":10,"kind":"stats"}
//   {"v":1,"id":11,"kind":"slowlog"}
//   {"v":1,"id":12,"kind":"rebase","add":[{"a":1,"b":2,"type":"peering"}]}
//
// ("transit" links follow Graph's convention: "a" is the provider, "b"
// the customer. "add"/"remove" both default to empty.)
//
// `rebase` is the admin kind: it adopts the delta into the serving
// baseline (every subsequent paths/diversity/whatif answers against the
// rebased topology) and responds {"v":1,"id":12,"ok":true,
// "kind":"rebase","epoch":E} with the post-rebase epoch. Against a
// sharded front-end the delta is applied to every shard under one epoch
// barrier, so concurrent readers never observe a mix of old and new
// shards. The bare QueryEngine rejects the kind with an error response
// (rebase there is a library call on the owning thread, not a wire
// operation).
//
// A stats response carries the server's build identity and a snapshot of
// the obs registry (counters/gauges/histograms, names sorted ascending,
// histograms as sparse [bucket, count] pairs). Its bytes are a pure
// function of the snapshot contents - same fixed-field-order rule as
// every other response - but NOT of the session alone (counters are
// process-wide), so stats stays out of byte-identity diffs.
//
// A slowlog response carries the server's slow-query ring (obs::
// SlowQueryLog): the capture threshold plus one entry per captured
// request - wire id, kind, source, delta link count, and the per-stage
// nanosecond breakdown (queue/parse/engine/serialize/send, which sum to
// wall_ns by construction), entries sorted slowest-first. Same
// byte-stability rule as stats: the bytes are a pure function of
// (id, threshold, entries) and the parse/serialize round trip is
// byte-identical, but the *contents* are process-wide runtime state, so
// slowlog is excluded from byte-identity diffs against --direct exactly
// like stats. A request's own slowlog entry is recorded after its
// response is sent, so a slowlog response never contains itself.
//
// Responses echo the request id, carry "ok", and serialize with a *fixed
// field order and number format* (std::to_chars, shortest round-trip for
// doubles): a response's bytes are a pure function of its contents, which
// is what lets the CI smoke job and serve_test diff server output against
// direct library calls byte-for-byte.
//
// Parsing rides on util/json.hpp (the shared recursive-descent reader).
// Malformed input throws ProtocolError - the server turns that into an
// error response and keeps the connection alive.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include <vector>

#include "panagree/diversity/length3.hpp"
#include "panagree/obs/export.hpp"
#include "panagree/obs/slowlog.hpp"
#include "panagree/scenario/overlay.hpp"
#include "panagree/util/error.hpp"

namespace panagree::serve {

using topology::AsId;

/// Malformed or unsupported request line (bad JSON, wrong version,
/// unknown kind, missing fields). A ParseError: requests are external
/// input, not caller bugs.
class ProtocolError : public util::ParseError {
 public:
  using util::ParseError::ParseError;
};

inline constexpr std::uint32_t kProtocolVersion = 1;

enum class RequestKind : std::uint8_t {
  kPaths,
  kDiversity,
  kWhatIf,
  kStats,
  kSlowLog,
  kRebase,
};

/// SlowQueryRecord.kind codes as they appear on the wire. Codes 0-5 are
/// the RequestKind values; kSlowKindError marks requests that failed
/// (their kind may be unknown) and kSlowKindUnknown absorbs any
/// out-of-range code a future server might emit. Only the *names* ever
/// hit the wire, so renumbering these constants is wire-compatible.
inline constexpr std::uint64_t kSlowKindError = 6;
inline constexpr std::uint64_t kSlowKindUnknown = 7;

/// Wire name of a slow-query kind code ("paths", ..., "error",
/// "unknown"); out-of-range codes map to "unknown".
[[nodiscard]] std::string_view slow_kind_name(std::uint64_t code) noexcept;

/// Inverse of slow_kind_name; throws ProtocolError for names that are
/// not one of the eight.
[[nodiscard]] std::uint64_t slow_kind_code(std::string_view name);

/// One parsed request line.
struct Request {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kPaths;
  /// The queried source (paths / diversity).
  AsId source = 0;
  /// The candidate deployment (whatif).
  scenario::Delta delta;
};

/// Parses one request line (the newline itself may be present or already
/// stripped). Throws ProtocolError on anything it cannot serve; when
/// `id_out` is non-null it receives the request id as soon as it is
/// known, so error responses can echo it even for requests that fail
/// later checks (unknown kind, bad delta, ...).
[[nodiscard]] Request parse_request(std::string_view line,
                                    std::uint64_t* id_out = nullptr);

/// Per-source diversity/geodistance aggregate of a diversity response -
/// the serving shape of scenario::SourceContribution with the mean
/// division applied.
struct DiversityResult {
  std::size_t grc_paths = 0;
  std::size_t ma_paths = 0;
  std::size_t grc_pairs = 0;
  std::size_t ma_extra_pairs = 0;
  double mean_best_geodistance_km = 0.0;
  double transit_fees = 0.0;

  friend bool operator==(const DiversityResult&,
                         const DiversityResult&) = default;
};

/// Scored what-if deployment: the metrics delta against the engine's
/// current state plus the sweep accounting (which is deterministic per
/// (state, delta) - epoch batching never changes it).
struct WhatIfResult {
  double paths_delta = 0.0;
  double pairs_delta = 0.0;
  double mean_km_delta = 0.0;
  double fees_delta = 0.0;
  double utility = 0.0;
  std::size_t recomputed_sources = 0;
  std::size_t cached_sources = 0;
  std::size_t ball_size = 0;

  friend bool operator==(const WhatIfResult&, const WhatIfResult&) = default;
};

// Response writers: each appends exactly one newline-terminated JSON
// object to `out`. Field order and number formatting are part of the
// protocol (byte-identity contract, see the header comment).
void append_paths_response(std::string& out, std::uint64_t id, AsId source,
                           std::span<const diversity::Length3Path> grc,
                           std::span<const diversity::Length3Path> ma);
void append_diversity_response(std::string& out, std::uint64_t id,
                               AsId source, const DiversityResult& result);
void append_whatif_response(std::string& out, std::uint64_t id,
                            const WhatIfResult& result);
void append_error_response(std::string& out, std::uint64_t id,
                           std::string_view message);
/// Serializes a rebase acknowledgment carrying the post-rebase epoch.
void append_rebase_response(std::string& out, std::uint64_t id,
                            std::uint64_t epoch);

/// Serializes a stats response: build identity + registry snapshot.
/// Field order: v, id, ok, kind, build, epoch, counters, gauges,
/// histograms; metric names in each section ascending. Bytes are a pure
/// function of (id, build, epoch, metrics).
void append_stats_response(std::string& out, std::uint64_t id,
                           std::string_view build, std::uint64_t epoch,
                           const obs::MetricsSnapshot& metrics);

/// Parsed stats response (client side of `stats`).
struct StatsResult {
  std::uint64_t id = 0;
  std::string build;
  std::uint64_t epoch = 0;
  obs::MetricsSnapshot metrics;

  friend bool operator==(const StatsResult&, const StatsResult&) = default;
};

/// Parses one stats response line. Throws ProtocolError on malformed
/// input or an error response. append_stats_response(parse(x)) == x:
/// the round trip is byte-stable (tested).
[[nodiscard]] StatsResult parse_stats_response(std::string_view line);

/// Serializes a slowlog response. Field order: v, id, ok, kind,
/// threshold_ns, entries; each entry: wire_id, kind (name string),
/// source, delta_links, wall_ns, queue_ns, parse_ns, engine_ns,
/// serialize_ns, send_ns. `entries` must already be in snapshot order
/// (obs::slow_record_before); bytes are a pure function of
/// (id, threshold_ns, entries).
void append_slowlog_response(std::string& out, std::uint64_t id,
                             std::uint64_t threshold_ns,
                             std::span<const obs::SlowQueryRecord> entries);

/// Parsed slowlog response (client side of `slowlog`).
struct SlowLogResult {
  std::uint64_t id = 0;
  std::uint64_t threshold_ns = 0;
  std::vector<obs::SlowQueryRecord> entries;

  friend bool operator==(const SlowLogResult&,
                         const SlowLogResult&) = default;
};

/// Parses one slowlog response line. Throws ProtocolError on malformed
/// input or an error response. append_slowlog_response(parse(x)) == x:
/// the round trip is byte-stable (tested).
[[nodiscard]] SlowLogResult parse_slowlog_response(std::string_view line);

/// Shortest-round-trip double formatting (std::to_chars) - the single
/// number format of the protocol, exposed for tests and clients.
void append_json_double(std::string& out, double value);

/// JSON string escaping ("\\", "\"", control characters).
void append_json_string(std::string& out, std::string_view value);

}  // namespace panagree::serve
