#include "panagree/core/bargain/negotiation.hpp"

#include <algorithm>

namespace panagree::bargain {

namespace {

using agreements::AccessGrant;
using topology::AsId;
using topology::Graph;

}  // namespace

std::vector<SegmentOption> derive_segment_options(
    const agreements::Agreement& agreement, AsId party,
    const agreements::AgreementEvaluator& evaluator,
    const traffic::DemandElasticity& elasticity,
    const diversity::GeodistanceModel* geodesy,
    const NegotiationOptions& options) {
  util::require(party == agreement.x() || party == agreement.y(),
                "derive_segment_options: not a party to the agreement");
  const Graph& graph = evaluator.economy().graph();
  const econ::TrafficAllocation& base = evaluator.base();
  const AccessGrant& partner_grant =
      party == agreement.x() ? agreement.grant_y : agreement.grant_x;
  const AsId partner = partner_grant.grantor;

  // The attracted traffic is *customer* traffic (§III-B: "all such newly
  // attracted traffic is forwarded over the agreement partner"); revenue
  // arises on the party's customer links. Anchor new/old paths at the
  // party's busiest customer; fall back to the party's own end-hosts when
  // it has no customer ASes.
  AsId anchor = topology::kInvalidAs;
  double anchor_volume = -1.0;
  for (const AsId customer : graph.customers(party)) {
    const double volume = base.link_flow(party, customer);
    if (volume > anchor_volume) {
      anchor_volume = volume;
      anchor = customer;
    }
  }

  std::vector<SegmentOption> segments;
  for (const AsId dest : partner_grant.all()) {
    if (dest == party) {
      continue;
    }
    // Reroutable traffic: what the party currently ships to `dest` through
    // any of its providers; remember the busiest provider as the
    // representative old path.
    double reroutable = 0.0;
    double best_volume = -1.0;
    AsId best_provider = topology::kInvalidAs;
    for (const AsId provider : graph.providers(party)) {
      // The old path must be routable: provider must reach dest directly.
      if (!graph.link_between(provider, dest)) {
        continue;
      }
      const double volume = base.segment_flow(party, provider, dest);
      reroutable += volume;
      if (volume > best_volume) {
        best_volume = volume;
        best_provider = provider;
      }
    }
    if (best_provider == topology::kInvalidAs) {
      continue;  // no provider detour exists to compare against
    }

    // Demand limit (constraint III): elasticity of the base demand, driven
    // by the latency improvement of the new segment when geodata exists.
    double improvement = options.default_improvement;
    if (geodesy != nullptr) {
      const double new_km =
          geodesy->path_geodistance_km(party, partner, dest);
      const double old_km =
          geodesy->path_geodistance_km(party, best_provider, dest);
      improvement = old_km > 0.0 ? (old_km - new_km) / old_km : 0.0;
    }
    const double base_demand =
        std::max(reroutable, base.link_flow(party, dest));
    const double max_new = elasticity.max_new_demand(base_demand, improvement);

    if (reroutable <= 0.0 && max_new <= 0.0) {
      continue;  // nothing to negotiate on this segment
    }
    SegmentOption option;
    if (anchor != topology::kInvalidAs && anchor != dest &&
        anchor != partner && anchor != best_provider) {
      option.new_path = {anchor, party, partner, dest};
      option.old_path = {anchor, party, best_provider, dest};
    } else {
      option.new_path = {party, partner, dest};
      option.old_path = {party, best_provider, dest};
    }
    option.reroutable = reroutable;
    option.max_new_demand = max_new;
    segments.push_back(std::move(option));
  }
  return segments;
}

DerivedNegotiation negotiate_agreement(
    const agreements::Agreement& agreement,
    const agreements::AgreementEvaluator& evaluator,
    const traffic::DemandElasticity& elasticity,
    const diversity::GeodistanceModel* geodesy,
    const NegotiationOptions& options) {
  agreement.validate(evaluator.economy().graph());
  DerivedNegotiation result;
  result.problem.party_x = agreement.x();
  result.problem.party_y = agreement.y();
  result.problem.x_segments = derive_segment_options(
      agreement, agreement.x(), evaluator, elasticity, geodesy, options);
  result.problem.y_segments = derive_segment_options(
      agreement, agreement.y(), evaluator, elasticity, geodesy, options);

  result.volume =
      solve_flow_volume(result.problem, evaluator, options.solver);

  // Cash alternative at full expected usage (§IV-B).
  const std::size_t n =
      2 * (result.problem.x_segments.size() + result.problem.y_segments.size());
  if (n > 0) {
    std::vector<double> full;
    full.reserve(n);
    for (const auto* side :
         {&result.problem.x_segments, &result.problem.y_segments}) {
      for (const SegmentOption& s : *side) {
        full.push_back(s.reroutable);
        full.push_back(s.max_new_demand);
      }
    }
    const auto shift = shift_for_variables(result.problem, full);
    result.u_x_full = evaluator.utility_change(result.problem.party_x, shift);
    result.u_y_full = evaluator.utility_change(result.problem.party_y, shift);
    result.cash = negotiate_cash(result.u_x_full, result.u_y_full);
  }
  return result;
}

}  // namespace panagree::bargain
