// §II as a demo: why BGP needs the Gao-Rexford conditions and a PAN does
// not.
//
//  * BGP/SPVP on the Fig. 1 "mutual provider access" arrangement converges
//    non-deterministically (a BGP wedgie); adding AS C's agreements yields
//    BAD GADGET, which oscillates forever (we print the live route churn).
//  * The PAN data plane forwards the very same GRC-violating paths
//    loop-free, with authenticated hop fields, through the discrete-event
//    network simulator.
#include <iostream>

#include "panagree/bgp/gadgets.hpp"
#include "panagree/bgp/simulator.hpp"
#include "panagree/pan/forwarding.hpp"
#include "panagree/sim/network.hpp"
#include "panagree/topology/examples.hpp"

using namespace panagree;

namespace {

std::string path_str(const topology::Graph& g, const bgp::Path& p) {
  if (p.empty()) {
    return "-";
  }
  std::string s;
  for (const auto as : p) {
    s += g.info(as).name;
  }
  return s;
}

}  // namespace

int main() {
  const topology::Fig1 t = topology::make_fig1();
  const topology::Graph& g = t.graph;

  std::cout << "=== 1. BGP with a GRC-violating agreement (wedgie) ===\n";
  const bgp::SppInstance disagree = bgp::make_fig1_disagree(t);
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    util::Rng rng(seed);
    const auto r = bgp::run_random_activations(disagree, rng);
    std::cout << "  activation seed " << seed << ": D -> "
              << path_str(g, r.assignment[t.D]) << ", E -> "
              << path_str(g, r.assignment[t.E]) << "\n";
  }
  std::cout << "  (same policies, different outcomes: operators cannot "
               "predict which)\n\n";

  std::cout << "=== 2. BGP after AS C concludes the same agreements (BAD "
               "GADGET) ===\n";
  const bgp::SppInstance bad = bgp::make_fig1_bad_gadget(t);
  // Show a few synchronous rounds of persistent route churn.
  bgp::Assignment state(g.num_ases());
  state[t.A] = {t.A};
  for (int round = 1; round <= 6; ++round) {
    bgp::Assignment next(g.num_ases());
    for (topology::AsId node = 0; node < g.num_ases(); ++node) {
      next[node] = bgp::best_available_path(bad, node, state);
    }
    state = next;
    std::cout << "  round " << round << ": C -> "
              << path_str(g, state[t.C]) << ", D -> "
              << path_str(g, state[t.D]) << ", E -> "
              << path_str(g, state[t.E]) << "\n";
  }
  const auto outcome = bgp::run_synchronous(bad);
  std::cout << "  synchronous SPVP: "
            << (outcome.outcome == bgp::Outcome::kOscillated
                    ? "oscillates (no stable state exists)"
                    : "converged?!")
            << "\n\n";

  std::cout << "=== 3. The PAN forwards the same paths loop-free ===\n";
  const pan::KeyStore keys(2024, g.num_ases());
  sim::Network net(g, keys);
  const std::vector<std::vector<topology::AsId>> paths{
      {t.D, t.E, t.B, t.A},  // the §II example: DEBA
      {t.E, t.D, t.A},       // agreement path EDA
      {t.H, t.D, t.E, t.B},  // extension to D's customer H
  };
  std::vector<std::size_t> ids;
  for (const auto& path : paths) {
    ids.push_back(net.send_packet(pan::issue_path(keys, path), 12000.0));
  }
  net.engine().run();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto& rec = net.deliveries()[ids[i]];
    std::cout << "  packet along ";
    for (const auto as : paths[i]) {
      std::cout << g.info(as).name;
    }
    std::cout << ": " << (rec.delivered ? "delivered" : "dropped") << " in "
              << rec.latency() * 1000.0 << " ms, trace ";
    for (const auto as : rec.trace) {
      std::cout << g.info(as).name;
    }
    std::cout << " (no AS repeats: loop-free by construction)\n";
  }

  std::cout << "\n=== 4. Tampered hop fields are rejected ===\n";
  auto fp = pan::issue_path(keys, {t.D, t.E, t.B, t.A});
  fp.hops[1].egress = t.F;  // try to divert the packet at E
  const pan::ForwardingEngine engine(g, keys);
  const auto result = engine.forward(fp);
  std::cout << "  diverted header: "
            << (result.delivered ? "delivered?!" : "dropped (invalid MAC)")
            << "\n";
  return 0;
}
