// NUMA-aware worker and memory placement for the parallel path engine.
//
// At CAIDA scale the enumeration core is memory-bound: every walk streams
// CSR rows out of DRAM, and on a multi-socket host a worker whose rows
// live on the other socket pays the interconnect on every row. The fix is
// the classic one: shard the sources across nodes, run each shard's
// workers on the cpus of its node, and put the pages they read on the
// same node.
//
// TopologyPlacement is the machine model behind that: the NUMA nodes and
// their cpus as read from /sys/devices/system/node, with a single-node
// fallback when sysfs is unavailable (non-Linux, containers without the
// hierarchy). It binds threads via sched_setaffinity and pages via the
// raw mbind syscall - no libnuma dependency - and everything is
// best-effort: a refused bind degrades to the unbound behavior, never an
// error, because placement is an optimization, not a correctness
// property. Results are byte-identical with placement on or off (the
// driver's source-order result commit does not care where a worker ran).
//
// The work-stealing driver (paths::map_indices) consumes this through
// ExecPolicy: workers are dealt to nodes in contiguous blocks, matching
// the driver's contiguous cost-balanced seed ranges, so a shard's sources
// and its workers land on the same node and steals stay node-local until
// a node runs dry.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace panagree::paths {

class TopologyPlacement {
 public:
  /// One NUMA node: its kernel id and the online cpus it owns.
  struct Node {
    int id = 0;
    std::vector<int> cpus;
  };

  /// The machine as described by /sys/devices/system/node: one Node per
  /// online NUMA node with its cpulist. Falls back to single_node() over
  /// every online cpu when the hierarchy is unreadable.
  [[nodiscard]] static TopologyPlacement detect();

  /// The process-wide detected placement (detect() run once).
  [[nodiscard]] static const TopologyPlacement& system();

  /// A trivial one-node placement over cpus 0..cpu_count-1 (tests, and
  /// the detect() fallback).
  [[nodiscard]] static TopologyPlacement single_node(std::size_t cpu_count);

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_cpus() const;
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }

  /// Node that worker `worker` of `workers` total belongs to: workers are
  /// dealt out in contiguous blocks (first ceil(W/N) workers on node 0,
  /// ...), mirroring the driver's contiguous seed ranges so a node's
  /// workers share their shard of the source space.
  [[nodiscard]] std::size_t node_of_worker(std::size_t worker,
                                           std::size_t workers) const;

  /// Pins the calling thread to one cpu of its node: worker `worker` of
  /// `workers` gets cpu (index within its node's block) % node cpus.
  /// Falls back to the whole node's cpu set if the single-cpu bind is
  /// refused; returns whether any bind took effect.
  bool bind_worker(std::size_t worker, std::size_t workers) const;

  /// Pins the calling thread to every cpu of node `node_index`.
  bool bind_current_thread(std::size_t node_index) const;

  /// Binds the page range containing [addr, addr + length) to node
  /// `node_index` (MPOL_BIND via the raw mbind syscall; the range is
  /// rounded out to page boundaries). Best-effort: false when the kernel
  /// refuses or the syscall is unavailable. Already-touched private
  /// pages stay where first-touch put them - call before the first read
  /// (e.g. right after mmap) for the bind to matter.
  bool bind_memory(const void* addr, std::size_t length,
                   std::size_t node_index) const;

  /// "N node(s), M cpus" - the readiness-line summary.
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<Node> nodes_;
};

/// Parses a kernel cpulist ("0-3,8,10-11") into cpu numbers, ascending.
/// Malformed input yields the longest valid prefix (kernel files are
/// trusted; this keeps the parser total for the detect() fallback path).
[[nodiscard]] std::vector<int> parse_cpu_list(const std::string& list);

/// The calling thread's current affinity as "cpus=K/N" (K allowed of N
/// online) - what panagree-serve reports in its readiness line so scripts
/// can verify --pin-threads took effect.
[[nodiscard]] std::string affinity_summary();

}  // namespace panagree::paths
