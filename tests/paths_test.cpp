// Tests for the unified path-enumeration engine: equivalence against
// straightforward reference implementations over Graph, and determinism of
// the parallel source driver for every thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <set>

#include "panagree/bgp/analysis.hpp"
#include "panagree/bgp/policy.hpp"
#include "panagree/diversity/length3.hpp"
#include "panagree/diversity/report.hpp"
#include "panagree/pan/beaconing.hpp"
#include "panagree/pan/path_construction.hpp"
#include "panagree/paths/enumerator.hpp"
#include "panagree/paths/parallel.hpp"
#include "panagree/topology/examples.hpp"
#include "panagree/topology/generator.hpp"

namespace panagree::paths {
namespace {

using topology::AsId;
using topology::Graph;
using topology::NeighborRole;

// ----------------------------------------------------- reference walkers

/// The pre-engine valley-free DFS, kept verbatim as a reference oracle:
/// per-hop Graph::neighbors() allocation and role_of() hash lookups.
std::vector<Path> reference_valley_free(const Graph& graph, AsId src,
                                        AsId dst, std::size_t max_len) {
  enum class Phase { kClimbing, kDescending };
  std::vector<Path> out;
  if (src == dst) {
    out.push_back({src});
    return out;
  }
  std::vector<bool> on_path(graph.num_ases(), false);
  Path path{src};
  on_path[src] = true;
  const std::function<void(AsId, Phase)> dfs = [&](AsId cur, Phase phase) {
    if (path.size() >= max_len) {
      return;
    }
    for (const AsId next : graph.neighbors(cur)) {
      if (on_path[next]) {
        continue;
      }
      const auto role = *graph.role_of(cur, next);
      Phase next_phase = phase;
      if (role == NeighborRole::kProvider || role == NeighborRole::kPeer) {
        if (phase != Phase::kClimbing) {
          continue;
        }
        next_phase = role == NeighborRole::kPeer ? Phase::kDescending
                                                 : Phase::kClimbing;
      } else {
        next_phase = Phase::kDescending;
      }
      path.push_back(next);
      if (next == dst) {
        out.push_back(path);
      } else {
        on_path[next] = true;
        dfs(next, next_phase);
        on_path[next] = false;
      }
      path.pop_back();
    }
  };
  dfs(src, Phase::kClimbing);
  return out;
}

using MidDst = std::pair<AsId, AsId>;

/// The pre-engine direct/indirect MA enumeration, kept as an oracle.
std::set<MidDst> reference_ma_pairs(const Graph& graph, AsId src,
                                    bool include_indirect) {
  std::set<MidDst> out;
  const auto excluded = [&](AsId z) {
    return z == src || graph.role_of(src, z) == NeighborRole::kCustomer;
  };
  for (const AsId p : graph.peers(src)) {
    for (const AsId z : graph.providers(p)) {
      if (!excluded(z)) {
        out.insert({p, z});
      }
    }
    for (const AsId z : graph.peers(p)) {
      if (!excluded(z)) {
        out.insert({p, z});
      }
    }
  }
  if (!include_indirect) {
    return out;
  }
  const auto add_indirect = [&](AsId p) {
    for (const AsId q : graph.peers(p)) {
      if (q == src) {
        continue;
      }
      if (graph.role_of(q, src) == NeighborRole::kCustomer) {
        continue;
      }
      out.insert({p, q});
    }
  };
  for (const AsId p : graph.customers(src)) {
    add_indirect(p);
  }
  for (const AsId p : graph.peers(src)) {
    add_indirect(p);
  }
  return out;
}

std::set<Path> as_set(const std::vector<Path>& paths) {
  return {paths.begin(), paths.end()};
}

// ------------------------------------------------- valley-free walk core

class EngineEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineEquivalence, ValleyFreeWalkMatchesReference) {
  topology::GeneratorParams params;
  params.num_ases = 250;
  params.tier1_count = 4;
  params.seed = GetParam();
  const auto topo = topology::generate_internet(params);
  const topology::CompiledTopology compiled(topo.graph);
  const PathEnumerator enumerator(compiled);
  for (AsId src = 0; src < 12; ++src) {
    for (AsId dst = 30; dst < 36; ++dst) {
      const auto expected =
          as_set(reference_valley_free(topo.graph, src, dst, 5));
      const auto got = as_set(
          enumerator.paths_between(src, dst, 5, ValleyFreeStep{}));
      EXPECT_EQ(got, expected) << "src=" << src << " dst=" << dst;
    }
  }
}

TEST_P(EngineEquivalence, MaPoliciesMatchReference) {
  topology::GeneratorParams params;
  params.num_ases = 350;
  params.tier1_count = 4;
  params.seed = GetParam() + 100;
  const auto topo = topology::generate_internet(params);
  const diversity::Length3Analyzer analyzer(topo.graph);
  for (AsId src = 0; src < 60; ++src) {
    for (const bool indirect : {false, true}) {
      const auto expected = reference_ma_pairs(topo.graph, src, indirect);
      std::set<MidDst> got;
      const auto paths = indirect ? analyzer.ma_paths(src)
                                  : analyzer.ma_direct_paths(src);
      for (const auto& p : paths) {
        EXPECT_TRUE(got.insert({p.mid, p.dst}).second)
            << "duplicate (mid,dst) emitted";
      }
      EXPECT_EQ(got, expected) << "src=" << src << " indirect=" << indirect;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalence, ::testing::Values(1, 2, 9));

TEST(Engine, Fig1ValleyFreePathsHtoI) {
  const auto t = topology::make_fig1();
  const topology::CompiledTopology compiled(t.graph);
  const PathEnumerator enumerator(compiled);
  const auto got =
      as_set(enumerator.paths_between(t.H, t.I, 6, ValleyFreeStep{}));
  const std::set<Path> expected{{t.H, t.D, t.E, t.I},
                                {t.H, t.D, t.A, t.B, t.E, t.I}};
  EXPECT_EQ(got, expected);
}

TEST(Engine, IsValleyFreeAgreesWithBgpLayer) {
  const auto t = topology::make_fig1();
  const topology::CompiledTopology compiled(t.graph);
  for (const Path& p :
       {Path{t.H, t.D, t.A}, Path{t.D, t.E, t.B}, Path{t.A, t.D, t.E},
        Path{t.H}, Path{}, Path{t.H, t.I}}) {
    EXPECT_EQ(is_valley_free(compiled, p), bgp::is_valley_free(t.graph, p));
  }
}

TEST(Engine, MutualTransitStepReclimbsOnlyAcrossAgreement) {
  const auto t = topology::make_fig1();
  const topology::CompiledTopology compiled(t.graph);
  const PathEnumerator enumerator(compiled);
  // Without the agreement, D cannot reach A via E (peer then provider).
  const auto plain =
      as_set(enumerator.paths_between(t.D, t.B, 6, ValleyFreeStep{}));
  EXPECT_FALSE(plain.contains(Path{t.D, t.E, t.B}));
  const MutualTransitStep mutual({{t.D, t.E}});
  const auto extended = as_set(enumerator.paths_between(t.D, t.B, 6, mutual));
  EXPECT_TRUE(extended.contains(Path{t.D, t.E, t.B}));
  // The plain valley-free set is a subset of the extended one.
  for (const Path& p : plain) {
    EXPECT_TRUE(extended.contains(p));
  }
}

// -------------------------------------------------------- parallel driver

TEST(MapSources, PreservesSourceOrder) {
  std::vector<AsId> sources;
  for (AsId as = 0; as < 300; ++as) {
    sources.push_back(as);
  }
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto results = map_sources(sources, threads, [](AsId as) {
      return static_cast<std::size_t>(as) * 3 + 1;
    });
    ASSERT_EQ(results.size(), sources.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], i * 3 + 1);
    }
  }
}

TEST(MapSources, PropagatesExceptions) {
  // Enough sources to clear the small-workload serial cutoff, so the
  // worker-pool rethrow path is the one under test.
  std::vector<AsId> sources(2 * kMinParallelSources);
  for (AsId as = 0; as < sources.size(); ++as) {
    sources[as] = as;
  }
  EXPECT_THROW(
      (void)map_sources(sources, 4,
                        [](AsId as) -> int {
                          if (as == 35) {
                            throw util::PreconditionError("boom");
                          }
                          return 0;
                        }),
      util::PreconditionError);
}

TEST(MapSources, SmallWorkloadsRunSeriallyButIdentically) {
  const std::vector<AsId> sources{3, 1, 4, 1, 5};  // below the cutoff
  const auto results =
      map_sources(sources, 8, [](AsId as) { return static_cast<int>(as); });
  EXPECT_EQ(results, (std::vector<int>{3, 1, 4, 1, 5}));
}

TEST(MapSources, ResolveThreadCount) {
  EXPECT_EQ(resolve_thread_count(3), 3u);
  EXPECT_GE(resolve_thread_count(0), 1u);
}

// Determinism: the parallel enumerator yields byte-identical results to the
// serial path for every thread count in {1, 2, 8}.

TEST(Determinism, GaoRexfordSppIdenticalForEveryThreadCount) {
  topology::GeneratorParams params;
  params.num_ases = 120;
  params.tier1_count = 4;
  params.seed = 77;
  const auto topo = topology::generate_internet(params);
  const AsId dest = 60;
  const auto serial = bgp::make_gao_rexford_spp(
      topo.graph, dest, {.max_path_length = 5, .threads = 1});
  for (const std::size_t threads : {2u, 8u}) {
    const auto parallel = bgp::make_gao_rexford_spp(
        topo.graph, dest, {.max_path_length = 5, .threads = threads});
    for (AsId node = 0; node < topo.graph.num_ases(); ++node) {
      EXPECT_EQ(parallel.permitted(node), serial.permitted(node))
          << "node " << node << " threads " << threads;
    }
  }
}

TEST(Determinism, DiversityReportIdenticalForEveryThreadCount) {
  topology::GeneratorParams params;
  params.num_ases = 500;
  params.tier1_count = 5;
  params.seed = 13;
  const auto topo = topology::generate_internet(params);
  diversity::DiversityParams dp;
  dp.sample_sources = 80;
  dp.threads = 1;
  const auto serial = diversity::analyze_path_diversity(topo.graph, dp);
  for (const std::size_t threads : {2u, 8u}) {
    dp.threads = threads;
    const auto parallel = diversity::analyze_path_diversity(topo.graph, dp);
    ASSERT_EQ(parallel.path_rows.size(), serial.path_rows.size());
    for (std::size_t i = 0; i < serial.path_rows.size(); ++i) {
      EXPECT_EQ(parallel.path_rows[i].as, serial.path_rows[i].as);
      EXPECT_EQ(parallel.path_rows[i].grc, serial.path_rows[i].grc);
      EXPECT_EQ(parallel.path_rows[i].ma_top, serial.path_rows[i].ma_top);
      EXPECT_EQ(parallel.path_rows[i].ma_star, serial.path_rows[i].ma_star);
      EXPECT_EQ(parallel.path_rows[i].ma_all, serial.path_rows[i].ma_all);
      EXPECT_EQ(parallel.dest_rows[i].grc, serial.dest_rows[i].grc);
      EXPECT_EQ(parallel.dest_rows[i].ma_top, serial.dest_rows[i].ma_top);
      EXPECT_EQ(parallel.dest_rows[i].ma_star, serial.dest_rows[i].ma_star);
      EXPECT_EQ(parallel.dest_rows[i].ma_all, serial.dest_rows[i].ma_all);
    }
    EXPECT_EQ(parallel.additional_paths.mean, serial.additional_paths.mean);
    EXPECT_EQ(parallel.additional_dests.max, serial.additional_dests.max);
  }
}

// --------------------------------------------- PAN crossing-policy walks

TEST(CrossingWalk, ConstructCandidatesAreAuthorizedWalks) {
  auto t = topology::make_fig1();
  pan::BeaconService beacons(t.graph);
  beacons.run();
  const pan::PathConstructor constructor(t.graph, beacons);
  pan::CrossingRegistry crossings;
  crossings.add(pan::Crossing{t.E, t.D, t.B, {t.D, t.H}});
  const pan::CrossingRegistry* registries[] = {nullptr, &crossings};
  for (const pan::CrossingRegistry* reg : registries) {
    for (const AsId dst : {t.I, t.B}) {
      const auto candidates = constructor.construct(t.H, dst, reg);
      // Default bound = the constructor's max_path_length, so the superset
      // guarantee holds for every candidate construct() can emit.
      const auto exhaustive = constructor.enumerate_authorized(t.H, dst, reg);
      const auto universe = as_set(exhaustive);
      for (const auto& path : candidates) {
        EXPECT_TRUE(universe.contains(path))
            << "candidate not an authorized walk";
      }
    }
  }
}

TEST(CrossingWalk, CrossingUnlocksGrcViolatingPath) {
  auto t = topology::make_fig1();
  pan::BeaconService beacons(t.graph);
  beacons.run();
  const pan::PathConstructor constructor(t.graph, beacons);
  const Path hdeb{t.H, t.D, t.E, t.B};
  EXPECT_FALSE(
      as_set(constructor.enumerate_authorized(t.H, t.B, nullptr, 6))
          .contains(hdeb));
  pan::CrossingRegistry crossings;
  crossings.add(pan::Crossing{t.E, t.D, t.B, {t.D, t.H}});
  EXPECT_TRUE(
      as_set(constructor.enumerate_authorized(t.H, t.B, &crossings, 6))
          .contains(hdeb));
  // Source restriction: a registry scoped to D only does not admit H.
  pan::CrossingRegistry only_d;
  only_d.add(pan::Crossing{t.E, t.D, t.B, {t.D}});
  EXPECT_FALSE(
      as_set(constructor.enumerate_authorized(t.H, t.B, &only_d, 6))
          .contains(hdeb));
}

// ------------------------------------------------------------- adapters

TEST(Adapters, GraphOverloadEqualsCompiledOverload) {
  const auto t = topology::make_fig1();
  const topology::CompiledTopology compiled(t.graph);
  EXPECT_EQ(bgp::enumerate_valley_free_paths(t.graph, t.H, t.I, 6),
            bgp::enumerate_valley_free_paths(compiled, t.H, t.I, 6));
}

}  // namespace
}  // namespace panagree::paths
